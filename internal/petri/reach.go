package petri

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/conf"
	"repro/internal/faultfs"
	"repro/internal/graph"
)

// ErrBudget is reported (wrapped) when an exploration exceeds its budget.
var ErrBudget = errors.New("petri: exploration budget exhausted")

// Budget bounds an exploration. The zero value applies defaults.
type Budget struct {
	// MaxConfigs caps the number of distinct configurations visited.
	// Zero means DefaultMaxConfigs.
	MaxConfigs int
	// MaxAgents prunes configurations with more agents. Zero means
	// unlimited. Pruning makes the closure incomplete, which Reach
	// records rather than hiding.
	MaxAgents int64
	// MaxDepth caps the exploration depth (word length). Zero means
	// unlimited.
	MaxDepth int
	// Workers sets the worker count of the level-synchronized parallel
	// BFS: levels of the closure wide enough to amortize the fan-out
	// are expanded by this many workers, with frontiers merged in
	// worker-index order so node ids — and hence the whole ReachSet,
	// including truncation points — are byte-identical for every worker
	// count. 0 means auto-detect (GOMAXPROCS); 1 forces the sequential
	// exploration.
	Workers int
	// SpillDir, when non-empty, runs the closure's count arena
	// out-of-core: arena pages are flushed to bucket files under a
	// private subdirectory of SpillDir once the resident footprint
	// exceeds SpillThreshold, and reloaded on demand. The resulting
	// ReachSet is node-for-node identical to the in-RAM one; call its
	// Release method to delete the spill files.
	SpillDir string
	// SpillThreshold is the resident-arena byte budget for spill mode.
	// Zero means conf.DefaultSpillThreshold.
	SpillThreshold int64
	// SpillFS is the filesystem seam spill bucket I/O goes through;
	// nil means the real OS. Fault-injection tests pass a
	// faultfs.Faulty here to exercise the degraded paths (disk full,
	// torn buckets) without a real broken disk.
	SpillFS faultfs.FS
	// Cancel, when non-nil, aborts the exploration once the channel is
	// closed (typically a serving request's ctx.Done()): Reach stops at
	// the next cancellation checkpoint and returns the partial closure
	// with Complete=false and an error wrapping ErrCancelled, so a
	// timed-out or disconnected caller frees its workers promptly
	// instead of finishing a closure nobody will read. Cancellation
	// never corrupts the partial set — it is exactly a truncation.
	Cancel <-chan struct{}
}

// cancelled polls the Cancel channel without blocking.
func (b Budget) cancelled() bool {
	if b.Cancel == nil {
		return false
	}
	select {
	case <-b.Cancel:
		return true
	default:
		return false
	}
}

// EffectiveWorkers resolves the Workers field: 0 auto-detects
// GOMAXPROCS, anything else is clamped below at 1.
func (b Budget) EffectiveWorkers() int {
	if b.Workers == 0 {
		return runtime.GOMAXPROCS(0)
	}
	if b.Workers < 1 {
		return 1
	}
	return b.Workers
}

// DefaultMaxConfigs is the visited-set cap used when Budget.MaxConfigs
// is zero.
const DefaultMaxConfigs = 1 << 20

func (b Budget) maxConfigs() int {
	if b.MaxConfigs <= 0 {
		return DefaultMaxConfigs
	}
	// Node ids live in int32 arrays across every search (Reach, the
	// covering-word BFS); a budget past that cannot be represented (or
	// fit in memory), so clamp instead of silently wrapping.
	if b.MaxConfigs > maxInt32 {
		return maxInt32
	}
	return b.MaxConfigs
}

// Edge is one explored firing: transition index and target node id.
type Edge struct {
	Trans int
	To    int
}

// ReachSet is the (possibly truncated) forward reachability closure of
// a configuration, with enough structure to reconstruct shortest firing
// words and to run SCC analyses.
//
// Internally the closure lives in a flat arena: node counts in a
// conf.CountSet (node id = insertion order, dedup via an
// open-addressing table over integer hashes — no string keys), edges in
// CSR form (one offset array, flat target/transition arrays), and the
// BFS tree in dense int32 arrays. No per-node allocation happens on the
// exploration hot path.
type ReachSet struct {
	net     *Net
	set     *conf.CountSet
	edgeOff []int32 // CSR offsets; finalized to length Len()+1
	edgeTo  []int32
	edgeVia []int32
	parent  []int32 // BFS tree parent node, −1 at the root
	via     []int32 // transition fired from parent, −1 at the root
	depth   []int32

	// Complete reports that the closure is exact: no budget or depth
	// truncation occurred. Analyses that require exactness must check it.
	Complete bool
}

// Reach computes the forward closure of from under the net, breadth
// first, within the budget. A truncated closure is still returned (with
// Complete=false) together with a wrapped ErrBudget, so callers can
// inspect partial results while being unable to mistake them for exact
// ones.
//
// When the closure runs out-of-core (SpillDir), spill-layer failures —
// a bucket write hitting a full disk, a bucket read, or a read-back
// CRC verification catching a torn or rotted bucket — surface as a
// returned *conf.SpillError (errors.Is sees through it to the
// underlying errno, e.g. syscall.ENOSPC), with the spill files
// released; they never crash the process even though the arena's hot
// paths report them by panicking.
func (n *Net) Reach(from conf.Config, budget Budget) (rs *ReachSet, err error) {
	if !from.Space().Equal(n.space) {
		return nil, errors.New("petri: initial configuration over wrong space")
	}
	d := n.space.Len()
	set := conf.NewCountSet(d, 256)
	if budget.SpillDir != "" {
		var serr error
		set, serr = conf.NewSpillingCountSet(d, 256, conf.SpillOptions{
			Dir: budget.SpillDir, Threshold: budget.SpillThreshold, FS: budget.SpillFS,
		})
		if serr != nil {
			return nil, serr
		}
		// Spill flushes and loads only run on this goroutine (parallel
		// workers read pinned, resident pages exclusively), so one
		// recovery point at the driver boundary converts every
		// spill-layer panic into the typed error.
		defer func() {
			if r := recover(); r != nil {
				se, ok := r.(*conf.SpillError)
				if !ok {
					panic(r)
				}
				set.Release()
				rs, err = nil, se
			}
		}()
	}
	rs = &ReachSet{
		net:      n,
		set:      set,
		Complete: true,
	}
	rs.set.Insert(from.RawCounts())
	rs.parent = append(rs.parent, -1)
	rs.via = append(rs.via, -1)
	rs.depth = append(rs.depth, 0)
	rs.edgeOff = append(rs.edgeOff, 0)

	e := &expander{
		rs:         rs,
		idx:        n.Index(),
		budget:     budget,
		maxConfigs: budget.maxConfigs(), // int32-clamped
		scratch:    make([]int64, d),
	}
	workers := budget.EffectiveWorkers()

	// The BFS queue is the node id sequence itself; depths are
	// monotone, so each level is a contiguous id range.
	for level := 0; level < rs.set.Len(); {
		if budget.cancelled() {
			rs.Complete = false
			rs.finalizeEdges()
			return rs, errCancelled("reach", rs.set.Len())
		}
		depth := rs.depth[level]
		if budget.MaxDepth > 0 && int(depth) >= budget.MaxDepth {
			// Unexpanded frontier: the closure may be missing deeper
			// configurations.
			rs.Complete = false
			break
		}
		levelEnd := level + 1
		for levelEnd < len(rs.depth) && rs.depth[levelEnd] == depth {
			levelEnd++
		}
		// Under spill, hold the level's pages resident through the
		// expansion: concurrent workers read At on exactly this range,
		// and the sequential path keeps a head's slice live across the
		// resolve calls that could otherwise evict its page.
		rs.set.PinRange(level, levelEnd)
		var ok bool
		if workers > 1 && levelEnd-level >= parallelWidth(workers) {
			ok = e.expandLevelParallel(level, levelEnd, workers)
		} else {
			ok = true
			for head := level; head < levelEnd && ok; head++ {
				// Wide sequential levels re-check cancellation every
				// 1024 nodes so a deadline lands mid-level, not only
				// at level boundaries.
				if head&1023 == 1023 && budget.cancelled() {
					rs.Complete = false
					rs.finalizeEdges()
					return rs, errCancelled("reach", rs.set.Len())
				}
				ok = e.expandNode(head)
			}
		}
		if !ok {
			rs.finalizeEdges()
			return rs, errBudget("reach", rs.set.Len())
		}
		level = levelEnd
	}
	rs.finalizeEdges()
	if !rs.Complete {
		return rs, errBudget("reach", rs.set.Len())
	}
	return rs, nil
}

// parallelWidth is the minimal level width worth fanning out to the
// given worker count.
func parallelWidth(workers int) int {
	if w := 2 * workers; w > 32 {
		return w
	}
	return 32
}

// expander carries the scratch state of one Reach call.
type expander struct {
	rs         *ReachSet
	idx        *Index
	budget     Budget
	maxConfigs int
	scratch    []int64

	// Per-worker buffers of the parallel BFS, reused across levels.
	wrecs    [][]fireRec
	wbufs    [][]int64
	wscratch [][]int64
}

// fireRec is one successful firing computed by a parallel worker,
// resolved against the visited set during the serial merge.
type fireRec struct {
	head int32
	ti   int32
	over bool // MaxAgents exceeded: prune, marking the closure incomplete
	hash uint64
}

// expandNode expands one node sequentially. It reports false when the
// configuration budget was exhausted mid-expansion (exploration stops
// with exactly maxConfigs nodes, the offending successor not added).
func (e *expander) expandNode(head int) bool {
	rs := e.rs
	nt := len(rs.net.trans)
	rs.checkEdgeCapacity(nt)
	cur := rs.set.At(head)
	for ti := 0; ti < nt; ti++ {
		if !e.idx.FireInto(ti, cur, e.scratch) {
			continue
		}
		if e.budget.MaxAgents > 0 && sumCounts(e.scratch) > e.budget.MaxAgents {
			rs.Complete = false
			continue
		}
		if !e.resolve(int32(head), int32(ti), e.scratch, conf.HashCounts(e.scratch)) {
			return false
		}
	}
	rs.edgeOff = append(rs.edgeOff, int32(len(rs.edgeTo)))
	return true
}

// resolve commits one successful firing against the visited set: dedup
// or admit the successor (budget permitting) and record the edge. It
// reports false on budget exhaustion. Both the sequential path and the
// parallel merge run through this single implementation — the
// byte-identical-for-any-worker-count guarantee depends on them
// resolving successors identically.
func (e *expander) resolve(head, ti int32, counts []int64, hash uint64) bool {
	rs := e.rs
	id, added, full := rs.set.InsertCapped(counts, hash, e.maxConfigs)
	if full {
		rs.Complete = false
		return false
	}
	if added {
		rs.parent = append(rs.parent, head)
		rs.via = append(rs.via, ti)
		rs.depth = append(rs.depth, rs.depth[head]+1)
	}
	rs.edgeTo = append(rs.edgeTo, int32(id))
	rs.edgeVia = append(rs.edgeVia, ti)
	return true
}

// expandLevelParallel expands the level [lo, hi) with the given worker
// count: workers fire every transition of contiguous head chunks into
// private buffers (reads only — the arena is immutable during the
// fan-out), then a serial merge resolves the records against the
// visited set in (head, transition) order, which is exactly the
// sequential exploration order. Node ids, edges and truncation points
// are therefore byte-identical to the sequential BFS.
func (e *expander) expandLevelParallel(lo, hi, workers int) bool {
	rs := e.rs
	d := rs.set.Width()
	for len(e.wrecs) < workers {
		e.wrecs = append(e.wrecs, nil)
		e.wbufs = append(e.wbufs, nil)
		e.wscratch = append(e.wscratch, make([]int64, d))
	}
	chunk := (hi - lo + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wlo := lo + w*chunk
		whi := wlo + chunk
		if whi > hi {
			whi = hi
		}
		if wlo >= whi {
			e.wrecs[w] = e.wrecs[w][:0]
			e.wbufs[w] = e.wbufs[w][:0]
			continue
		}
		wg.Add(1)
		go func(w, wlo, whi int) {
			defer wg.Done()
			recs := e.wrecs[w][:0]
			buf := e.wbufs[w][:0]
			scratch := e.wscratch[w]
			nt := len(rs.net.trans)
			for head := wlo; head < whi; head++ {
				cur := rs.set.At(head)
				for ti := 0; ti < nt; ti++ {
					if !e.idx.FireInto(ti, cur, scratch) {
						continue
					}
					if e.budget.MaxAgents > 0 && sumCounts(scratch) > e.budget.MaxAgents {
						recs = append(recs, fireRec{head: int32(head), ti: int32(ti), over: true})
						continue
					}
					recs = append(recs, fireRec{head: int32(head), ti: int32(ti), hash: conf.HashCounts(scratch)})
					buf = append(buf, scratch...)
				}
			}
			e.wrecs[w] = recs
			e.wbufs[w] = buf
		}(w, wlo, whi)
	}
	wg.Wait()

	for w := 0; w < workers; w++ {
		wlo := lo + w*chunk
		whi := wlo + chunk
		if whi > hi {
			whi = hi
		}
		if wlo >= whi {
			continue
		}
		recs := e.wrecs[w]
		buf := e.wbufs[w]
		ri, off := 0, 0
		for head := wlo; head < whi; head++ {
			rs.checkEdgeCapacity(len(rs.net.trans))
			for ri < len(recs) && int(recs[ri].head) == head {
				rec := recs[ri]
				ri++
				if rec.over {
					rs.Complete = false
					continue
				}
				counts := buf[off*d : (off+1)*d]
				off++
				if !e.resolve(rec.head, rec.ti, counts, rec.hash) {
					return false
				}
			}
			rs.edgeOff = append(rs.edgeOff, int32(len(rs.edgeTo)))
		}
	}
	return true
}

const maxInt32 = 1<<31 - 1

// checkEdgeCapacity fails loudly if recording one more node's edges
// could overflow the int32 CSR offsets — a closure past 2³¹ edges is
// beyond any realistic budget (and memory), but it must not wrap
// silently.
func (rs *ReachSet) checkEdgeCapacity(nt int) {
	if len(rs.edgeTo) > maxInt32-nt {
		panic("petri: closure exceeds int32 edge capacity")
	}
}

// finalizeEdges pads the CSR offset array for nodes that were never
// expanded (truncated frontiers), so it always has Len()+1 entries.
func (rs *ReachSet) finalizeEdges() {
	for len(rs.edgeOff) <= rs.set.Len() {
		rs.edgeOff = append(rs.edgeOff, int32(len(rs.edgeTo)))
	}
}

func sumCounts(c []int64) int64 {
	var total int64
	for _, v := range c {
		total += v
	}
	return total
}

func errBudget(op string, visited int) error {
	return &BudgetError{Op: op, Visited: visited}
}

// ErrCancelled is reported (wrapped) when an exploration is aborted by
// Budget.Cancel. It is a truncation, not a failure of the net: the
// caller asked the search to stop.
var ErrCancelled = errors.New("petri: exploration cancelled")

func errCancelled(op string, visited int) error {
	return fmt.Errorf("petri: %s cancelled after %d configurations: %w", op, visited, ErrCancelled)
}

// BudgetError reports a truncated exploration. It wraps ErrBudget.
type BudgetError struct {
	Op      string
	Visited int
}

func (e *BudgetError) Error() string {
	return "petri: " + e.Op + ": exploration budget exhausted"
}

// Unwrap makes errors.Is(err, ErrBudget) succeed.
func (e *BudgetError) Unwrap() error { return ErrBudget }

// Len returns the number of configurations in the closure.
func (rs *ReachSet) Len() int { return rs.set.Len() }

// Release deletes the closure's spill files when the exploration ran
// out-of-core (Budget.SpillDir); the ReachSet must not be used
// afterwards. For in-RAM closures it is a no-op, so callers can
// defer it unconditionally.
func (rs *ReachSet) Release() { rs.set.Release() }

// SpillStats reports the closure arena's spill traffic (pages
// evicted, pages loaded); both zero for in-RAM closures.
func (rs *ReachSet) SpillStats() (evictions, loads int) { return rs.set.SpillStats() }

// ArenaBytes returns the closure arena's total footprint in bytes
// (resident + spilled).
func (rs *ReachSet) ArenaBytes() int64 { return rs.set.ArenaBytes() }

// Config returns the configuration with the given node id as a
// zero-copy view into the closure arena. The counts must not be
// mutated. For in-RAM closures the view stays valid for the life of
// the ReachSet; for spilled closures it is only valid until the next
// Config/ID/Contains call, which may evict the page behind it — use
// Clone to detach a configuration that must outlive the iteration.
func (rs *ReachSet) Config(id int) conf.Config {
	return conf.View(rs.net.space, rs.set.At(id))
}

// ID returns the node id of a configuration, if present.
func (rs *ReachSet) ID(c conf.Config) (int, bool) {
	counts := c.RawCounts()
	if len(counts) != rs.set.Width() {
		return 0, false
	}
	return rs.set.Lookup(counts)
}

// Contains reports whether the configuration is in the closure.
func (rs *ReachSet) Contains(c conf.Config) bool {
	_, ok := rs.ID(c)
	return ok
}

// NumEdges returns the number of explored edges.
func (rs *ReachSet) NumEdges() int { return len(rs.edgeTo) }

// Edges returns the outgoing explored edges of a node. The slice is
// freshly allocated; hot paths should use CSR instead.
func (rs *ReachSet) Edges(id int) []Edge {
	lo, hi := rs.edgeOff[id], rs.edgeOff[id+1]
	if lo == hi {
		return nil
	}
	out := make([]Edge, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, Edge{Trans: int(rs.edgeVia[i]), To: int(rs.edgeTo[i])})
	}
	return out
}

// CSR returns the closure's edge structure as a compressed sparse row
// graph sharing the ReachSet's backing arrays — no per-node slices are
// allocated. Node ids match the closure's.
func (rs *ReachSet) CSR() graph.CSR {
	return graph.CSR{Off: rs.edgeOff, Dst: rs.edgeTo}
}

// Depth returns the BFS depth of a node (shortest word length from the
// root).
func (rs *ReachSet) Depth(id int) int { return int(rs.depth[id]) }

// PathTo returns a shortest firing word (as transition indices) from the
// root to the given node.
func (rs *ReachSet) PathTo(id int) []int {
	var rev []int
	for cur := id; rs.parent[cur] >= 0; cur = int(rs.parent[cur]) {
		rev = append(rev, int(rs.via[cur]))
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// ForEach calls fn for every node id in BFS order, stopping early if fn
// returns false. The configurations are arena views, valid for the life
// of the ReachSet.
func (rs *ReachSet) ForEach(fn func(id int, c conf.Config) bool) {
	for id := 0; id < rs.set.Len(); id++ {
		if !fn(id, rs.Config(id)) {
			return
		}
	}
}

// AdjacencyLists returns the closure's edge structure as plain
// adjacency lists. It allocates one slice per node; graph algorithms
// on the hot path should use CSR instead.
func (rs *ReachSet) AdjacencyLists() [][]int {
	adj := make([][]int, rs.set.Len())
	for id := range adj {
		lo, hi := rs.edgeOff[id], rs.edgeOff[id+1]
		if lo == hi {
			continue
		}
		adj[id] = make([]int, 0, hi-lo)
		for i := lo; i < hi; i++ {
			adj[id] = append(adj[id], int(rs.edgeTo[i]))
		}
	}
	return adj
}
