package petri

import (
	"testing"

	"repro/internal/conf"
)

func TestCoverable(t *testing.T) {
	n := chainNet(t) // a -> b -> c
	from := conf.MustFromMap(tSpace, map[string]int64{"a": 3})
	tests := []struct {
		name   string
		target map[string]int64
		want   bool
	}{
		{"reach all c", map[string]int64{"c": 3}, true},
		{"partial split", map[string]int64{"b": 1, "c": 2}, true},
		{"too many", map[string]int64{"c": 4}, false},
		{"need a back", map[string]int64{"a": 1, "c": 3}, false},
		{"zero target", nil, true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			target := conf.MustFromMap(tSpace, tc.target)
			got, err := n.Coverable(from, target, 0)
			if err != nil {
				t.Fatalf("Coverable: %v", err)
			}
			if got != tc.want {
				t.Errorf("Coverable = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestCoverableUnbounded(t *testing.T) {
	// pump: a -> a+b makes arbitrarily many b coverable.
	n, err := New(tSpace, []Transition{
		mk(t, "pump", map[string]int64{"a": 1}, map[string]int64{"a": 1, "b": 1}),
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	from := conf.MustUnit(tSpace, "a")
	target := conf.MustFromMap(tSpace, map[string]int64{"b": 50})
	got, err := n.Coverable(from, target, 0)
	if err != nil || !got {
		t.Fatalf("Coverable = %v, %v; want true", got, err)
	}
	// But c is never produced.
	impossible := conf.MustFromMap(tSpace, map[string]int64{"c": 1})
	got, err = n.Coverable(from, impossible, 0)
	if err != nil || got {
		t.Fatalf("Coverable(c) = %v, %v; want false", got, err)
	}
}

func TestShortestCoveringWord(t *testing.T) {
	n := chainNet(t)
	from := conf.MustFromMap(tSpace, map[string]int64{"a": 2})
	target := conf.MustFromMap(tSpace, map[string]int64{"c": 2})
	w, err := n.ShortestCoveringWord(from, target, Budget{})
	if err != nil {
		t.Fatalf("ShortestCoveringWord: %v", err)
	}
	if w == nil {
		t.Fatal("no witness found")
	}
	if len(w.Word) != 4 {
		t.Errorf("witness length = %d, want 4", len(w.Word))
	}
	end, err := n.FireWord(from, w.Word)
	if err != nil {
		t.Fatalf("witness replay: %v", err)
	}
	if !target.Leq(end) {
		t.Errorf("witness end %v does not cover %v", end, target)
	}
	if !end.Equal(w.Reached) {
		t.Errorf("Reached = %v, replay = %v", w.Reached, end)
	}
}

func TestShortestCoveringWordTrivial(t *testing.T) {
	n := chainNet(t)
	from := conf.MustFromMap(tSpace, map[string]int64{"a": 1, "c": 1})
	target := conf.MustFromMap(tSpace, map[string]int64{"c": 1})
	w, err := n.ShortestCoveringWord(from, target, Budget{})
	if err != nil || w == nil {
		t.Fatalf("witness = %v, %v", w, err)
	}
	if len(w.Word) != 0 {
		t.Errorf("trivial cover needs word of length %d, want 0", len(w.Word))
	}
}

func TestShortestCoveringWordNotCoverable(t *testing.T) {
	n := chainNet(t)
	from := conf.MustFromMap(tSpace, map[string]int64{"a": 1})
	target := conf.MustFromMap(tSpace, map[string]int64{"c": 2})
	w, err := n.ShortestCoveringWord(from, target, Budget{})
	if err != nil {
		t.Fatalf("ShortestCoveringWord: %v", err)
	}
	if w != nil {
		t.Errorf("witness for non-coverable target: %v", w)
	}
}

// The shortest witness must agree with the length found by exhaustive
// closure search.
func TestShortestCoveringWordMinimal(t *testing.T) {
	n, err := New(tSpace, []Transition{
		mk(t, "split", map[string]int64{"a": 1}, map[string]int64{"b": 2}),
		mk(t, "join", map[string]int64{"b": 2}, map[string]int64{"c": 1}),
		mk(t, "slow", map[string]int64{"b": 1}, map[string]int64{"c": 1}),
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	from := conf.MustFromMap(tSpace, map[string]int64{"a": 1})
	target := conf.MustFromMap(tSpace, map[string]int64{"c": 1})
	w, err := n.ShortestCoveringWord(from, target, Budget{})
	if err != nil || w == nil {
		t.Fatalf("witness = %v, %v", w, err)
	}
	// split then join covers in 2 steps; split+slow also 2; so 2.
	if len(w.Word) != 2 {
		t.Errorf("witness length = %d, want 2", len(w.Word))
	}
}

func TestKarpMillerBounded(t *testing.T) {
	n := chainNet(t)
	from := conf.MustFromMap(tSpace, map[string]int64{"a": 2})
	tree, err := n.KarpMiller(from, 0)
	if err != nil {
		t.Fatalf("KarpMiller: %v", err)
	}
	if !tree.Bounded() {
		t.Error("conservative chain net reported unbounded")
	}
	if !tree.Covers(conf.MustFromMap(tSpace, map[string]int64{"c": 2})) {
		t.Error("KM tree misses coverable target")
	}
	if tree.Covers(conf.MustFromMap(tSpace, map[string]int64{"c": 3})) {
		t.Error("KM tree covers impossible target")
	}
}

func TestKarpMillerUnbounded(t *testing.T) {
	n, err := New(tSpace, []Transition{
		mk(t, "pump", map[string]int64{"a": 1}, map[string]int64{"a": 1, "b": 1}),
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	tree, err := n.KarpMiller(conf.MustUnit(tSpace, "a"), 0)
	if err != nil {
		t.Fatalf("KarpMiller: %v", err)
	}
	if tree.Bounded() {
		t.Error("pumping net reported bounded")
	}
	if !tree.Covers(conf.MustFromMap(tSpace, map[string]int64{"b": 1_000_000})) {
		t.Error("ω should cover any b count")
	}
	sets := tree.PumpableSets()
	if len(sets) == 0 {
		t.Fatal("no pumpable sets found")
	}
	iB, _ := tSpace.Index("b")
	found := false
	for _, s := range sets {
		for _, p := range s {
			if p == iB {
				found = true
			}
		}
	}
	if !found {
		t.Error("place b not reported pumpable")
	}
}

func TestExtMarkingOrder(t *testing.T) {
	a := ExtMarking{1, 2, 3}
	b := ExtMarking{1, Omega, 3}
	if !a.Leq(b) {
		t.Error("concrete ≤ ω failed")
	}
	if b.Leq(a) {
		t.Error("ω ≤ concrete succeeded")
	}
	if !b.Leq(b.clone()) || !b.Equal(b.clone()) {
		t.Error("clone order/equality failed")
	}
}
