// Fault injection against the out-of-core closure: spill-layer
// failures (disk full, torn or rotted bucket files) must come back
// from Reach as typed, inspectable errors — never a process crash,
// never a silently wrong closure.
package petri_test

import (
	"errors"
	"syscall"
	"testing"

	"repro/internal/conf"
	"repro/internal/faultfs"
	"repro/internal/petri"
)

// spillInstance is an unbounded pump net (a → a+b): the closure's
// size is whatever the budget allows, so it comfortably outgrows a
// tiny spill threshold and bucket I/O genuinely happens.
func spillInstance(t *testing.T) (*petri.Net, conf.Config) {
	t.Helper()
	space := conf.MustSpace("a", "b")
	u := func(n string) conf.Config { return conf.MustUnit(space, n) }
	pump, err := petri.NewTransition("pump", u("a"), u("a").Add(u("b")))
	if err != nil {
		t.Fatal(err)
	}
	net, err := petri.New(space, []petri.Transition{pump})
	if err != nil {
		t.Fatal(err)
	}
	return net, u("a")
}

// A full disk mid-exploration surfaces as a returned *conf.SpillError
// wrapping ENOSPC, with the partial spill files released — the
// degraded path of the failure matrix, exercised without a real
// broken disk.
func TestReachSpillDiskFullReturnsError(t *testing.T) {
	net, from := spillInstance(t)
	faulty := faultfs.NewFaulty(faultfs.OS(), []faultfs.Fault{
		{Op: faultfs.OpWrite, Path: ".spill", Nth: 1, Err: syscall.ENOSPC},
	})
	rs, err := net.Reach(from, petri.Budget{
		MaxConfigs: 1 << 14, SpillDir: t.TempDir(), SpillThreshold: 8 << 10, SpillFS: faulty,
	})
	if err == nil {
		t.Fatal("disk-full spill did not surface as an error")
	}
	var se *conf.SpillError
	if !errors.As(err, &se) || !errors.Is(err, syscall.ENOSPC) {
		t.Errorf("want *conf.SpillError wrapping ENOSPC, got %v", err)
	}
	if rs != nil {
		t.Error("failed exploration returned a ReachSet")
	}
	if len(faulty.Fired()) != 1 {
		t.Errorf("fault log %v, want exactly the injected ENOSPC", faulty.Fired())
	}
}

// A bucket read that keeps failing transiently (the injected error is
// visible to Reach as whatever the filesystem reports) also comes
// back typed rather than crashing the serial driver goroutine.
func TestReachSpillReadErrorReturnsError(t *testing.T) {
	net, from := spillInstance(t)
	faulty := faultfs.NewFaulty(faultfs.OS(), []faultfs.Fault{
		{Op: faultfs.OpRead, Path: ".spill", Nth: 1, Err: syscall.EIO},
	})
	rs, err := net.Reach(from, petri.Budget{
		MaxConfigs: 1 << 14, SpillDir: t.TempDir(), SpillThreshold: 8 << 10, SpillFS: faulty,
	})
	if rs != nil {
		defer rs.Release()
	}
	// Whether the injected read is reached depends on eviction traffic
	// (bucket loads only happen on cold probes); if it fired, the error
	// must be the typed one, never a crash.
	var se *conf.SpillError
	if errors.As(err, &se) {
		if rs != nil {
			t.Error("failed exploration returned a ReachSet")
		}
		return
	}
	if len(faulty.Fired()) > 0 {
		t.Fatalf("bucket read fault fired but Reach reported %v", err)
	}
	t.Skip("no bucket read occurred this run; the verify path is covered by the conf-level tests")
}
