package petri

import (
	"errors"
	"math"
	"strconv"

	"repro/internal/conf"
)

// Omega is the ω value of extended markings in the Karp–Miller tree: a
// place that can be pumped beyond any bound.
const Omega = int64(math.MaxInt64)

// ExtMarking is a marking over ℕ ∪ {ω}, represented densely; Omega
// encodes ω.
type ExtMarking []int64

// NewExtMarking converts a configuration to an extended marking.
func NewExtMarking(c conf.Config) ExtMarking {
	m := make(ExtMarking, c.Space().Len())
	for i := range m {
		m[i] = c.Get(i)
	}
	return m
}

// Leq reports componentwise order, with ω ≥ everything.
func (m ExtMarking) Leq(o ExtMarking) bool {
	for i, v := range m {
		if v == Omega && o[i] != Omega {
			return false
		}
		if v != Omega && o[i] != Omega && v > o[i] {
			return false
		}
	}
	return true
}

// Equal reports componentwise equality.
func (m ExtMarking) Equal(o ExtMarking) bool {
	for i, v := range m {
		if v != o[i] {
			return false
		}
	}
	return true
}

// HasOmega reports whether any component is ω.
func (m ExtMarking) HasOmega() bool {
	for _, v := range m {
		if v == Omega {
			return true
		}
	}
	return false
}

// OmegaPlaces returns the indices of ω components.
func (m ExtMarking) OmegaPlaces() []int {
	var out []int
	for i, v := range m {
		if v == Omega {
			out = append(out, i)
		}
	}
	return out
}

func (m ExtMarking) clone() ExtMarking {
	out := make(ExtMarking, len(m))
	copy(out, m)
	return out
}

// extFireInto attempts to fire transition ti on the src extended
// marking into the dst scratch buffer (ω absorbs all arithmetic),
// reporting enabledness. It is the ω-aware sibling of Index.FireInto:
// same sparse precondition check and sparse displacement, no
// allocation.
func extFireInto(idx *Index, ti int, src, dst []int64) bool {
	for _, e := range idx.Pre(ti) {
		if src[e.State] != Omega && src[e.State] < e.N {
			return false
		}
	}
	copy(dst, src)
	for _, e := range idx.Delta(ti) {
		if dst[e.State] != Omega {
			dst[e.State] += e.N
		}
	}
	return true
}

// KMNode is a node of the Karp–Miller tree.
type KMNode struct {
	Marking  ExtMarking
	Parent   int // −1 at the root
	Via      int // transition index fired from the parent, −1 at the root
	Children []int
}

// KMTree is a Karp–Miller coverability tree.
type KMTree struct {
	net   *Net
	Nodes []KMNode
}

// KarpMiller builds the Karp–Miller tree from the given configuration.
// maxNodes (0 = default) caps the construction defensively; the
// algorithm itself always terminates.
//
// Markings are deduplicated through the same arena-backed integer-hash
// set as the reachability closure (no string keys); tree nodes with
// equal markings share one arena vector, and firing/acceleration run
// in a scratch buffer.
func (n *Net) KarpMiller(from conf.Config, maxNodes int) (*KMTree, error) {
	if !from.Space().Equal(n.space) {
		return nil, errors.New("petri: initial configuration over wrong space")
	}
	if maxNodes <= 0 {
		maxNodes = DefaultMaxConfigs
	}
	// Marking ids live in the CountSet's int32 table: clamp like
	// Budget.maxConfigs rather than wrap.
	if maxNodes > maxInt32 {
		maxNodes = maxInt32
	}
	d := n.space.Len()
	idx := n.Index()
	seen := conf.NewCountSet(d, 256)
	scratch := make([]int64, d)

	tree := &KMTree{net: n}
	rootID, _ := seen.Insert(NewExtMarking(from))
	tree.Nodes = append(tree.Nodes, KMNode{Marking: ExtMarking(seen.At(rootID)), Parent: -1, Via: -1})
	queue := []int{0}

	for len(queue) > 0 {
		head := queue[0]
		queue = queue[1:]
		cur := tree.Nodes[head].Marking
		for ti := 0; ti < len(n.trans); ti++ {
			if !extFireInto(idx, ti, cur, scratch) {
				continue
			}
			// Acceleration: for every strictly dominated ancestor,
			// promote strictly increased places to ω.
			next := ExtMarking(scratch)
			for anc := head; anc >= 0; anc = tree.Nodes[anc].Parent {
				am := tree.Nodes[anc].Marking
				if am.Leq(next) && !am.Equal(next) {
					for i := range next {
						if next[i] != Omega && am[i] != Omega && next[i] > am[i] {
							next[i] = Omega
						}
					}
				}
			}
			sid, added := seen.Insert(next)
			id := len(tree.Nodes)
			tree.Nodes = append(tree.Nodes, KMNode{Marking: ExtMarking(seen.At(sid)), Parent: head, Via: ti})
			tree.Nodes[head].Children = append(tree.Nodes[head].Children, id)
			// Expand only markings not seen anywhere in the tree so far
			// (the "set" variant, sound for boundedness and
			// coverability-set computation).
			if added {
				queue = append(queue, id)
			}
			if len(tree.Nodes) > maxNodes {
				return nil, errBudget("karp-miller", len(tree.Nodes))
			}
		}
	}
	return tree, nil
}

// Bounded reports whether the reachability set from the tree's root is
// finite (no ω in any node).
func (t *KMTree) Bounded() bool {
	for _, n := range t.Nodes {
		if n.Marking.HasOmega() {
			return false
		}
	}
	return true
}

// Covers reports whether some node of the tree covers the target
// configuration (with ω covering everything). By the Karp–Miller
// theorem this decides coverability.
func (t *KMTree) Covers(target conf.Config) bool {
	tm := NewExtMarking(target)
	for _, n := range t.Nodes {
		if tm.Leq(n.Marking) {
			return true
		}
	}
	return false
}

// PumpableSets returns the distinct ω-place sets occurring in the tree,
// each as a sorted index slice. These are the candidate P∖Q sets of the
// bottom-configuration analysis (Section 6).
func (t *KMTree) PumpableSets() [][]int {
	seen := make(map[string]bool)
	var out [][]int
	for _, n := range t.Nodes {
		om := n.Marking.OmegaPlaces()
		if len(om) == 0 {
			continue
		}
		key := ""
		for _, i := range om {
			key += strconv.Itoa(i) + ","
		}
		if !seen[key] {
			seen[key] = true
			out = append(out, om)
		}
	}
	return out
}
