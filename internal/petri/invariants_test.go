package petri

import (
	"testing"

	"repro/internal/conf"
	"repro/internal/hilbert"
)

func TestPInvariantsChain(t *testing.T) {
	// a -> b -> c is conservative: the all-ones vector must generate.
	n := chainNet(t)
	inv, err := n.PInvariants(hilbert.Options{})
	if err != nil {
		t.Fatalf("PInvariants: %v", err)
	}
	if len(inv) == 0 {
		t.Fatal("no invariants for a conservative net")
	}
	foundOnes := false
	for _, y := range inv {
		all1 := true
		for _, v := range y {
			if v != 1 {
				all1 = false
			}
		}
		if all1 {
			foundOnes = true
		}
	}
	if !foundOnes {
		t.Errorf("all-ones invariant missing: %v", inv)
	}
	if !n.HasUniformInvariant() {
		t.Error("HasUniformInvariant = false for conservative net")
	}
}

func TestPInvariantsPump(t *testing.T) {
	// pump: a -> a+b creates agents: invariants must assign b weight 0.
	n, err := New(tSpace, []Transition{
		mk(t, "pump", map[string]int64{"a": 1}, map[string]int64{"a": 1, "b": 1}),
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if n.HasUniformInvariant() {
		t.Error("pumping net reported conservative")
	}
	inv, err := n.PInvariants(hilbert.Options{})
	if err != nil {
		t.Fatalf("PInvariants: %v", err)
	}
	iB, _ := tSpace.Index("b")
	for _, y := range inv {
		if y[iB] != 0 {
			t.Errorf("invariant %v weights the pumped place b", y)
		}
	}
}

// Every generated invariant is genuinely preserved along random
// executions.
func TestPInvariantsPreserved(t *testing.T) {
	n, err := New(tSpace, []Transition{
		mk(t, "t1", map[string]int64{"a": 2}, map[string]int64{"b": 1}),
		mk(t, "t2", map[string]int64{"b": 1}, map[string]int64{"a": 2}),
		mk(t, "t3", map[string]int64{"b": 2}, map[string]int64{"c": 2}),
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	inv, err := n.PInvariants(hilbert.Options{})
	if err != nil {
		t.Fatalf("PInvariants: %v", err)
	}
	if len(inv) == 0 {
		t.Fatal("expected at least one invariant (e.g. a + 2b + 2c)")
	}
	from := conf.MustFromMap(tSpace, map[string]int64{"a": 4, "b": 1})
	rs, err := n.Reach(from, Budget{MaxConfigs: 1 << 12})
	if err != nil {
		t.Fatalf("Reach: %v", err)
	}
	for _, y := range inv {
		want := InvariantValue(y, from)
		rs.ForEach(func(_ int, c conf.Config) bool {
			if got := InvariantValue(y, c); got != want {
				t.Errorf("invariant %v not preserved: %d vs %d at %v", y, got, want, c)
				return false
			}
			return true
		})
	}
}

func TestPInvariantsNoTransitions(t *testing.T) {
	n, err := New(tSpace, nil)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := n.PInvariants(hilbert.Options{}); err == nil {
		t.Error("invariants of an empty net accepted")
	}
}
