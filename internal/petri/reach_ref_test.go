// Property tests pinning the arena-backed closure engine to a naive
// seed-era reference: a []conf.Config slice deduplicated through a
// map[string]int over Config.Key, firing with Transition.Fire. The
// arena closure must be node-for-node and edge-for-edge identical on
// the E4/E8 nets — including truncated-budget, agent-capped and
// depth-capped explorations — and the parallel BFS must produce
// byte-identical ReachSets for every worker count.
package petri_test

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/conf"
	"repro/internal/counting"
	"repro/internal/petri"
)

// refReach is the seed implementation of Reach, kept as the oracle.
type refReach struct {
	configs  []conf.Config
	index    map[string]int
	edges    [][]petri.Edge
	parent   []int
	via      []int
	depth    []int
	complete bool
	err      bool // budget error reported
}

func referenceReach(n *petri.Net, from conf.Config, budget petri.Budget) *refReach {
	rs := &refReach{index: make(map[string]int), complete: true}
	add := func(c conf.Config, parent, via, depth int) int {
		id := len(rs.configs)
		rs.configs = append(rs.configs, c)
		rs.index[c.Key()] = id
		rs.edges = append(rs.edges, nil)
		rs.parent = append(rs.parent, parent)
		rs.via = append(rs.via, via)
		rs.depth = append(rs.depth, depth)
		return id
	}
	add(from, -1, -1, 0)
	maxConfigs := budget.MaxConfigs
	if maxConfigs <= 0 {
		maxConfigs = petri.DefaultMaxConfigs
	}
	for head := 0; head < len(rs.configs); head++ {
		if budget.MaxDepth > 0 && rs.depth[head] >= budget.MaxDepth {
			rs.complete = false
			continue
		}
		cur := rs.configs[head]
		for ti := 0; ti < n.Len(); ti++ {
			next, ok := n.At(ti).Fire(cur)
			if !ok {
				continue
			}
			if budget.MaxAgents > 0 && next.Agents() > budget.MaxAgents {
				rs.complete = false
				continue
			}
			id, exists := rs.index[next.Key()]
			if !exists {
				if len(rs.configs) >= maxConfigs {
					rs.complete = false
					rs.err = true
					return rs
				}
				id = add(next, head, ti, rs.depth[head]+1)
			}
			rs.edges[head] = append(rs.edges[head], petri.Edge{Trans: ti, To: id})
		}
	}
	rs.err = !rs.complete
	return rs
}

// assertEqualToReference checks node-for-node, edge-for-edge equality
// between an arena ReachSet and the reference closure.
func assertEqualToReference(t *testing.T, rs *petri.ReachSet, err error, ref *refReach) {
	t.Helper()
	if (err != nil) != ref.err {
		t.Fatalf("err = %v, reference err = %v", err, ref.err)
	}
	if err != nil && !errors.Is(err, petri.ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
	if rs.Complete != ref.complete {
		t.Fatalf("Complete = %v, reference %v", rs.Complete, ref.complete)
	}
	if rs.Len() != len(ref.configs) {
		t.Fatalf("Len = %d, reference %d", rs.Len(), len(ref.configs))
	}
	for id := 0; id < rs.Len(); id++ {
		if !rs.Config(id).Equal(ref.configs[id]) {
			t.Fatalf("node %d: %v, reference %v", id, rs.Config(id), ref.configs[id])
		}
		if rs.Depth(id) != ref.depth[id] {
			t.Fatalf("node %d depth = %d, reference %d", id, rs.Depth(id), ref.depth[id])
		}
		got, want := rs.Edges(id), ref.edges[id]
		if len(got) != len(want) {
			t.Fatalf("node %d: %d edges, reference %d", id, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("node %d edge %d = %+v, reference %+v", id, i, got[i], want[i])
			}
		}
		// Shortest words replay through the same tree.
		word := rs.PathTo(id)
		if len(word) != ref.depth[id] {
			t.Fatalf("node %d word length %d, depth %d", id, len(word), ref.depth[id])
		}
		refWord := refPathTo(ref, id)
		for i := range word {
			if word[i] != refWord[i] {
				t.Fatalf("node %d word %v, reference %v", id, word, refWord)
			}
		}
	}
}

func refPathTo(ref *refReach, id int) []int {
	var rev []int
	for cur := id; ref.parent[cur] >= 0; cur = ref.parent[cur] {
		rev = append(rev, ref.via[cur])
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// e4e8Instances returns the (net, initial) pairs of the E4 and E8
// experiment families.
func e4e8Instances(t *testing.T) map[string]struct {
	net  *petri.Net
	from conf.Config
} {
	t.Helper()
	out := make(map[string]struct {
		net  *petri.Net
		from conf.Config
	})
	add := func(name string, net *petri.Net, from conf.Config) {
		out[name] = struct {
			net  *petri.Net
			from conf.Config
		}{net, from}
	}
	{
		p, err := counting.Example42(2)
		if err != nil {
			t.Fatal(err)
		}
		add("example42(2)x3", p.Net(), p.InitialConfig(conf.MustFromMap(p.Space(), map[string]int64{"i": 3})))
	}
	{
		p, err := counting.Example42(3)
		if err != nil {
			t.Fatal(err)
		}
		add("example42(3)x5", p.Net(), p.InitialConfig(conf.MustFromMap(p.Space(), map[string]int64{"i": 5})))
	}
	{
		p, err := counting.FlockOfBirds(4)
		if err != nil {
			t.Fatal(err)
		}
		add("flock(4)x6", p.Net(), p.InitialConfig(conf.MustFromMap(p.Space(), map[string]int64{"i": 6})))
	}
	{
		p, err := counting.PowerOfTwo(3)
		if err != nil {
			t.Fatal(err)
		}
		add("power2(3)x8", p.Net(), p.InitialConfig(conf.MustFromMap(p.Space(), map[string]int64{"i": 8})))
	}
	{
		// E8's unbounded pump net: truncation is guaranteed.
		space := conf.MustSpace("a", "b")
		u := func(n string) conf.Config { return conf.MustUnit(space, n) }
		pump, err := petri.NewTransition("pump", u("a"), u("a").Add(u("b")))
		if err != nil {
			t.Fatal(err)
		}
		net, err := petri.New(space, []petri.Transition{pump})
		if err != nil {
			t.Fatal(err)
		}
		add("pump(unbounded)", net, u("a"))
	}
	{
		net, from := wideSplitNet(t, 40)
		add("split40(wide)", net, from)
	}
	return out
}

// wideSplitNet builds n·a under a→b, a→c: its BFS levels are up to n+1
// nodes wide, so the level-synchronized parallel fan-out engages (the
// protocol closures above are deep and narrow).
func wideSplitNet(t *testing.T, n int64) (*petri.Net, conf.Config) {
	t.Helper()
	space := conf.MustSpace("a", "b", "c")
	u := func(s string) conf.Config { return conf.MustUnit(space, s) }
	ab, err := petri.NewTransition("ab", u("a"), u("b"))
	if err != nil {
		t.Fatal(err)
	}
	ac, err := petri.NewTransition("ac", u("a"), u("c"))
	if err != nil {
		t.Fatal(err)
	}
	net, err := petri.New(space, []petri.Transition{ab, ac})
	if err != nil {
		t.Fatal(err)
	}
	return net, u("a").Scale(n)
}

func TestReachMatchesReference(t *testing.T) {
	budgets := map[string]petri.Budget{
		"default":     {MaxConfigs: 1 << 16},
		"truncated":   {MaxConfigs: 100},
		"tiny":        {MaxConfigs: 3},
		"agentCapped": {MaxConfigs: 1 << 16, MaxAgents: 5},
		"depthCapped": {MaxConfigs: 1 << 16, MaxDepth: 4},
	}
	for name, inst := range e4e8Instances(t) {
		for bname, budget := range budgets {
			t.Run(fmt.Sprintf("%s/%s", name, bname), func(t *testing.T) {
				if name == "pump(unbounded)" && bname == "default" {
					budget.MaxConfigs = 1 << 10 // keep the infinite closure finite
				}
				ref := referenceReach(inst.net, inst.from, budget)
				rs, err := inst.net.Reach(inst.from, budget)
				if rs == nil {
					t.Fatalf("Reach returned nil set (err %v)", err)
				}
				assertEqualToReference(t, rs, err, ref)
			})
		}
	}
}

// The parallel BFS must yield byte-identical ReachSets to the
// sequential exploration for every worker count, including truncated
// searches, because frontiers merge in worker-index order.
func TestReachParallelMatchesSequential(t *testing.T) {
	budgets := map[string]petri.Budget{
		"default":   {MaxConfigs: 1 << 16},
		"truncated": {MaxConfigs: 500},
		"capped":    {MaxConfigs: 1 << 16, MaxAgents: 7},
	}
	for name, inst := range e4e8Instances(t) {
		for bname, budget := range budgets {
			if name == "pump(unbounded)" && bname == "default" {
				budget.MaxConfigs = 1 << 10
			}
			seqBudget := budget
			seqBudget.Workers = 1 // force the sequential exploration as baseline
			seq, seqErr := inst.net.Reach(inst.from, seqBudget)
			for _, workers := range []int{1, 2, 4, 8} {
				t.Run(fmt.Sprintf("%s/%s/w%d", name, bname, workers), func(t *testing.T) {
					b := budget
					b.Workers = workers
					par, parErr := inst.net.Reach(inst.from, b)
					if (seqErr != nil) != (parErr != nil) {
						t.Fatalf("err: sequential %v, parallel %v", seqErr, parErr)
					}
					if par.Complete != seq.Complete || par.Len() != seq.Len() {
						t.Fatalf("Complete/Len: parallel (%v, %d), sequential (%v, %d)",
							par.Complete, par.Len(), seq.Complete, seq.Len())
					}
					for id := 0; id < seq.Len(); id++ {
						if !par.Config(id).Equal(seq.Config(id)) {
							t.Fatalf("node %d: parallel %v, sequential %v", id, par.Config(id), seq.Config(id))
						}
						if par.Depth(id) != seq.Depth(id) {
							t.Fatalf("node %d depth: parallel %d, sequential %d", id, par.Depth(id), seq.Depth(id))
						}
						pe, se := par.Edges(id), seq.Edges(id)
						if len(pe) != len(se) {
							t.Fatalf("node %d: %d edges parallel, %d sequential", id, len(pe), len(se))
						}
						for i := range pe {
							if pe[i] != se[i] {
								t.Fatalf("node %d edge %d: parallel %+v, sequential %+v", id, i, pe[i], se[i])
							}
						}
						pw, sw := par.PathTo(id), seq.PathTo(id)
						if len(pw) != len(sw) {
							t.Fatalf("node %d word: parallel %v, sequential %v", id, pw, sw)
						}
						for i := range pw {
							if pw[i] != sw[i] {
								t.Fatalf("node %d word: parallel %v, sequential %v", id, pw, sw)
							}
						}
					}
				})
			}
		}
	}
}

// The level-synchronized fan-out must engage on wide closures (the
// test would vacuously pass if every level stayed under the parallel
// threshold), so pin a case known to have wide levels.
func TestReachParallelEngagesOnWideClosure(t *testing.T) {
	net, from := wideSplitNet(t, 80)
	seq, err := net.Reach(from, petri.Budget{MaxConfigs: 1 << 18, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	maxWidth := 0
	width, depth := 0, 0
	for id := 0; id < seq.Len(); id++ {
		if seq.Depth(id) != depth {
			depth, width = seq.Depth(id), 0
		}
		width++
		if width > maxWidth {
			maxWidth = width
		}
	}
	if maxWidth < 64 {
		t.Fatalf("widest level %d: instance too small to exercise the parallel path", maxWidth)
	}
	par, err := net.Reach(from, petri.Budget{MaxConfigs: 1 << 18, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if par.Len() != seq.Len() || par.NumEdges() != seq.NumEdges() {
		t.Fatalf("parallel (%d nodes, %d edges) != sequential (%d nodes, %d edges)",
			par.Len(), par.NumEdges(), seq.Len(), seq.NumEdges())
	}
}

// A spill-enabled Reach must produce a ReachSet node-for-node
// identical to the in-RAM one — same ids, depths, edges and shortest
// words — for every worker count, while actually paging the arena to
// disk (the threshold is set far below the closure's footprint).
func TestReachSpilledMatchesRAM(t *testing.T) {
	for name, inst := range e4e8Instances(t) {
		budget := petri.Budget{MaxConfigs: 1 << 14, Workers: 1}
		if name == "pump(unbounded)" {
			budget.MaxConfigs = 1 << 10
		}
		ram, ramErr := inst.net.Reach(inst.from, budget)
		for _, workers := range []int{1, 2, 4, 8} {
			t.Run(fmt.Sprintf("%s/w%d", name, workers), func(t *testing.T) {
				b := budget
				b.Workers = workers
				b.SpillDir = t.TempDir()
				b.SpillThreshold = 8 << 10
				sp, spErr := inst.net.Reach(inst.from, b)
				if sp != nil {
					defer sp.Release()
				}
				if (ramErr != nil) != (spErr != nil) {
					t.Fatalf("err: ram %v, spilled %v", ramErr, spErr)
				}
				if sp.Complete != ram.Complete || sp.Len() != ram.Len() {
					t.Fatalf("Complete/Len: spilled (%v, %d), ram (%v, %d)",
						sp.Complete, sp.Len(), ram.Complete, ram.Len())
				}
				if ram.ArenaBytes() > b.SpillThreshold {
					if ev, _ := sp.SpillStats(); ev == 0 {
						t.Errorf("arena of %d bytes exceeds threshold %d but never spilled",
							sp.ArenaBytes(), b.SpillThreshold)
					}
				}
				for id := 0; id < ram.Len(); id++ {
					if !sp.Config(id).Equal(ram.Config(id)) {
						t.Fatalf("node %d: spilled %v, ram %v", id, sp.Config(id), ram.Config(id))
					}
					if sp.Depth(id) != ram.Depth(id) {
						t.Fatalf("node %d depth: spilled %d, ram %d", id, sp.Depth(id), ram.Depth(id))
					}
					se, re := sp.Edges(id), ram.Edges(id)
					if len(se) != len(re) {
						t.Fatalf("node %d: %d edges spilled, %d ram", id, len(se), len(re))
					}
					for i := range se {
						if se[i] != re[i] {
							t.Fatalf("node %d edge %d: spilled %+v, ram %+v", id, i, se[i], re[i])
						}
					}
					sw, rw := sp.PathTo(id), ram.PathTo(id)
					if len(sw) != len(rw) {
						t.Fatalf("node %d word: spilled %v, ram %v", id, sw, rw)
					}
					for i := range sw {
						if sw[i] != rw[i] {
							t.Fatalf("node %d word: spilled %v, ram %v", id, sw, rw)
						}
					}
				}
			})
		}
	}
}
