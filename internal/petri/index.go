package petri

// SparseEntry is one (state, count) component of a sparse configuration
// view.
type SparseEntry struct {
	// State is the state's index in the net's space.
	State int
	// N is the count carried on that state (a displacement entry may be
	// negative).
	N int64
}

// Index is the precomputed dependency structure of a net used by
// incremental simulation engines: sparse views of every transition's
// precondition and displacement, plus the inverse map from states to
// the transitions whose enabledness/weight can change when that state's
// count changes. Nets are immutable, so the index is computed once and
// shared.
type Index struct {
	pre        [][]SparseEntry // per transition: support of Pre
	delta      [][]SparseEntry // per transition: nonzero Post−Pre entries
	dependents [][]int         // per state: transitions with Pre on it
	affected   [][]int         // per transition: deduped dependents of its delta support
}

// buildIndex computes the index for a net.
func buildIndex(n *Net) *Index {
	d := n.space.Len()
	idx := &Index{
		pre:        make([][]SparseEntry, len(n.trans)),
		delta:      make([][]SparseEntry, len(n.trans)),
		dependents: make([][]int, d),
	}
	for ti, t := range n.trans {
		for i := 0; i < d; i++ {
			if need := t.Pre.Get(i); need > 0 {
				idx.pre[ti] = append(idx.pre[ti], SparseEntry{State: i, N: need})
				idx.dependents[i] = append(idx.dependents[i], ti)
			}
			if dv := t.Post.Get(i) - t.Pre.Get(i); dv != 0 {
				idx.delta[ti] = append(idx.delta[ti], SparseEntry{State: i, N: dv})
			}
		}
	}
	idx.affected = make([][]int, len(n.trans))
	mark := make([]bool, len(n.trans))
	for ti := range n.trans {
		for _, e := range idx.delta[ti] {
			for _, dt := range idx.dependents[e.State] {
				if !mark[dt] {
					mark[dt] = true
					idx.affected[ti] = append(idx.affected[ti], dt)
				}
			}
		}
		for _, dt := range idx.affected[ti] {
			mark[dt] = false
		}
	}
	return idx
}

// Pre returns the sparse support of transition ti's precondition. The
// returned slice is shared and must not be mutated.
func (x *Index) Pre(ti int) []SparseEntry { return x.pre[ti] }

// Delta returns the sparse nonzero displacement of transition ti. The
// returned slice is shared and must not be mutated.
func (x *Index) Delta(ti int) []SparseEntry { return x.delta[ti] }

// Dependents returns the transitions whose precondition involves the
// given state: exactly those whose instance weight can change when the
// state's count changes. The returned slice is shared and must not be
// mutated.
func (x *Index) Dependents(state int) []int { return x.dependents[state] }

// AggregateDelta accumulates the displacement of firing each
// transition ti fires[ti] times into the dense per-state vector disp
// (indexed like the net's space): disp += Σ_ti fires[ti]·Delta(ti).
// Batch simulation engines use it to apply many interactions as one
// configuration update. len(fires) must cover every transition with a
// nonzero count; disp is not cleared first.
func (x *Index) AggregateDelta(fires []int64, disp []int64) {
	for ti, k := range fires {
		if k == 0 {
			continue
		}
		for _, e := range x.delta[ti] {
			disp[e.State] += k * e.N
		}
	}
}

// FireInto attempts to fire transition ti from the src counts into the
// dst scratch buffer (both dense, indexed like the net's space),
// reporting whether ti was enabled. On success dst holds src + Δ(ti);
// on failure dst is unspecified. It is the zero-allocation form of
// Transition.Fire used by the closure engines: the sparse precondition
// check touches only Pre's support and the displacement only Δ's.
func (x *Index) FireInto(ti int, src, dst []int64) bool {
	for _, e := range x.pre[ti] {
		if src[e.State] < e.N {
			return false
		}
	}
	copy(dst, src)
	for _, e := range x.delta[ti] {
		dst[e.State] += e.N
	}
	return true
}

// BackFireInto writes into dst the minimal configuration from which
// firing ti covers the target counts: max(Pre, target − Δ(ti))
// componentwise, clamped at zero. It is the scratch-buffer form of
// Transition.BackFire used by the backward coverability loop.
func (x *Index) BackFireInto(ti int, target, dst []int64) {
	copy(dst, target)
	for _, e := range x.delta[ti] {
		dst[e.State] -= e.N
	}
	for i, v := range dst {
		if v < 0 {
			dst[i] = 0
		}
	}
	for _, e := range x.pre[ti] {
		if dst[e.State] < e.N {
			dst[e.State] = e.N
		}
	}
}

// Affected returns the transitions whose instance weight can change
// when transition ti fires: the deduplicated dependents of ti's delta
// support, precomputed so the simulation hot path needs no per-fire
// set-building. The returned slice is shared and must not be mutated.
func (x *Index) Affected(ti int) []int { return x.affected[ti] }
