package petri

import (
	"errors"
	"testing"
	"time"

	"repro/internal/conf"
)

// chainNet builds the net a -> b -> c over tSpace.
func chainNet(t *testing.T) *Net {
	t.Helper()
	n, err := New(tSpace, []Transition{
		mk(t, "ab", map[string]int64{"a": 1}, map[string]int64{"b": 1}),
		mk(t, "bc", map[string]int64{"b": 1}, map[string]int64{"c": 1}),
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return n
}

func TestNetValidation(t *testing.T) {
	// Empty spaces are allowed (degenerate T|∅ restrictions).
	if _, err := New(conf.MustSpace(), nil); err != nil {
		t.Errorf("empty space rejected: %v", err)
	}
	dup := []Transition{
		mk(t, "t", map[string]int64{"a": 1}, map[string]int64{"b": 1}),
		mk(t, "t", map[string]int64{"b": 1}, map[string]int64{"c": 1}),
	}
	if _, err := New(tSpace, dup); err == nil {
		t.Error("duplicate names accepted")
	}
}

func TestNetAccessors(t *testing.T) {
	n := chainNet(t)
	if n.Len() != 2 || n.Width() != 1 || n.NormInf() != 1 {
		t.Errorf("Len/Width/NormInf = %d/%d/%d", n.Len(), n.Width(), n.NormInf())
	}
	if !n.Conservative() {
		t.Error("chain net not conservative")
	}
	ts := n.Transitions()
	ts[0] = Transition{}
	if n.At(0).Name != "ab" {
		t.Error("Transitions() exposed internal slice")
	}
}

func TestSuccessorsAndFireWord(t *testing.T) {
	n := chainNet(t)
	from := conf.MustFromMap(tSpace, map[string]int64{"a": 1, "b": 1})
	succ := n.Successors(from)
	if len(succ) != 2 {
		t.Fatalf("successors = %d, want 2", len(succ))
	}
	got, err := n.FireWord(from, []int{0, 1, 1})
	if err != nil {
		t.Fatalf("FireWord: %v", err)
	}
	want := conf.MustFromMap(tSpace, map[string]int64{"c": 2})
	if !got.Equal(want) {
		t.Errorf("FireWord = %v, want %v", got, want)
	}
	if _, err := n.FireWord(from, []int{1, 1}); err == nil {
		t.Error("disabled word accepted")
	}
	if _, err := n.FireWord(from, []int{7}); err == nil {
		t.Error("out-of-range index accepted")
	}
}

func TestNetRestrict(t *testing.T) {
	n := chainNet(t)
	q := conf.MustSpace("a", "b")
	r, err := n.Restrict(q)
	if err != nil {
		t.Fatalf("Restrict: %v", err)
	}
	// ab restricts to a->b; bc restricts to b->0 (c vanishes).
	if r.Len() != 2 {
		t.Fatalf("restricted net has %d transitions, want 2", r.Len())
	}
	if !r.Space().Equal(q) {
		t.Error("restricted net over wrong space")
	}
}

func TestNetRestrictMerges(t *testing.T) {
	n, err := New(tSpace, []Transition{
		mk(t, "t1", map[string]int64{"a": 1}, map[string]int64{"b": 1, "c": 1}),
		mk(t, "t2", map[string]int64{"a": 1}, map[string]int64{"b": 1, "c": 2}),
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	q := conf.MustSpace("a", "b")
	r, err := n.Restrict(q)
	if err != nil {
		t.Fatalf("Restrict: %v", err)
	}
	if r.Len() != 1 {
		t.Errorf("restriction kept %d transitions, want 1 (merged)", r.Len())
	}
}

func TestReach(t *testing.T) {
	n := chainNet(t)
	from := conf.MustFromMap(tSpace, map[string]int64{"a": 2})
	rs, err := n.Reach(from, Budget{})
	if err != nil {
		t.Fatalf("Reach: %v", err)
	}
	if !rs.Complete {
		t.Fatal("closure incomplete")
	}
	// Configurations: all (a,b,c) with a+b+c=2 reachable monotonically:
	// {2a},{a+b},{a+c},{2b},{b+c},{2c} = 6.
	if rs.Len() != 6 {
		t.Errorf("closure size = %d, want 6", rs.Len())
	}
	target := conf.MustFromMap(tSpace, map[string]int64{"c": 2})
	id, ok := rs.ID(target)
	if !ok {
		t.Fatal("2c not reached")
	}
	word := rs.PathTo(id)
	if len(word) != 4 {
		t.Errorf("shortest word length = %d, want 4", len(word))
	}
	end, err := n.FireWord(from, word)
	if err != nil || !end.Equal(target) {
		t.Errorf("witness word does not replay: %v, %v", end, err)
	}
}

func TestReachBudget(t *testing.T) {
	// Unbounded net: a -> a + b.
	n, err := New(tSpace, []Transition{
		mk(t, "pump", map[string]int64{"a": 1}, map[string]int64{"a": 1, "b": 1}),
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	from := conf.MustUnit(tSpace, "a")
	rs, err := n.Reach(from, Budget{MaxConfigs: 10})
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
	if rs == nil || rs.Complete {
		t.Fatal("truncated closure not flagged")
	}

	// MaxAgents pruning also yields an incomplete closure.
	rs, err = n.Reach(from, Budget{MaxAgents: 3})
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
	if rs.Complete {
		t.Fatal("agent-pruned closure marked complete")
	}
	if rs.Len() != 3 { // a, a+b, a+2b
		t.Errorf("pruned closure size = %d, want 3", rs.Len())
	}
}

func TestReachMaxDepth(t *testing.T) {
	n := chainNet(t)
	from := conf.MustFromMap(tSpace, map[string]int64{"a": 2})
	rs, err := n.Reach(from, Budget{MaxDepth: 1})
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
	if rs.Complete {
		t.Fatal("depth-limited closure marked complete")
	}
	// Depth 1: {2a} plus one-step successors {a+b}.
	if rs.Len() != 2 {
		t.Errorf("depth-1 closure size = %d, want 2", rs.Len())
	}
}

func TestReachWrongSpace(t *testing.T) {
	n := chainNet(t)
	if _, err := n.Reach(conf.New(conf.MustSpace("z")), Budget{}); err == nil {
		t.Error("wrong-space initial accepted")
	}
}

func TestAdjacencyLists(t *testing.T) {
	n := chainNet(t)
	from := conf.MustUnit(tSpace, "a")
	rs, err := n.Reach(from, Budget{})
	if err != nil {
		t.Fatalf("Reach: %v", err)
	}
	adj := rs.AdjacencyLists()
	if len(adj) != rs.Len() {
		t.Fatalf("adjacency size mismatch")
	}
	// a -> b -> c linearly.
	if len(adj[0]) != 1 || len(adj[adj[0][0]]) != 1 {
		t.Errorf("unexpected adjacency %v", adj)
	}
}

func TestReachCancel(t *testing.T) {
	// Unbounded net again; without the budget the walk never ends, so
	// only cancellation can stop it.
	n, err := New(tSpace, []Transition{
		mk(t, "pump", map[string]int64{"a": 1}, map[string]int64{"a": 1, "b": 1}),
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	from := conf.MustUnit(tSpace, "a")

	// A pre-closed channel aborts at the first level boundary.
	closed := make(chan struct{})
	close(closed)
	rs, err := n.Reach(from, Budget{MaxConfigs: 1 << 20, Cancel: closed})
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	if rs == nil || rs.Complete {
		t.Fatalf("cancelled closure marked complete: %+v", rs)
	}

	// Cancelling mid-walk stops it promptly even with a huge budget.
	cancel := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		_, err := n.Reach(from, Budget{MaxConfigs: 1 << 30, Cancel: cancel})
		done <- err
	}()
	close(cancel)
	select {
	case err := <-done:
		if !errors.Is(err, ErrCancelled) && !errors.Is(err, ErrBudget) {
			t.Fatalf("err = %v, want ErrCancelled (or ErrBudget if it raced)", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled exploration still running")
	}
}
