package petri

import (
	"fmt"

	"repro/internal/hilbert"
)

// PInvariants returns a generating set of the non-negative P-invariants
// (place semiflows) of the net: vectors y ∈ ℕ^P with y·Δ(t) = 0 for
// every transition. A P-invariant certifies that the weighted agent
// count Σ_p y(p)·ρ(p) is preserved by every execution — the algebraic
// face of the paper's "conservative" protocols (a net is conservative
// exactly when the all-ones vector is an invariant).
//
// The computation solves the homogeneous system C^T·y = 0 over ℕ with
// the Contejean–Devie procedure; the result is the minimal (Hilbert)
// generating set.
func (n *Net) PInvariants(opts hilbert.Options) ([][]int64, error) {
	if n.Len() == 0 {
		return nil, fmt.Errorf("petri: no transitions to constrain invariants")
	}
	rows := make([][]int64, n.Len())
	for ti, t := range n.trans {
		rows[ti] = t.Delta()
	}
	sys, err := hilbert.NewSystem(rows)
	if err != nil {
		return nil, err
	}
	return sys.MinimalSolutions(opts)
}

// HasUniformInvariant reports whether the all-ones vector is a
// P-invariant, i.e. whether the net is conservative. It cross-checks
// the syntactic Conservative() answer algebraically.
func (n *Net) HasUniformInvariant() bool {
	for _, t := range n.trans {
		var sum int64
		for _, d := range t.Delta() {
			sum += d
		}
		if sum != 0 {
			return false
		}
	}
	return true
}

// InvariantValue returns Σ_p y(p)·c(p) for an invariant candidate y.
func InvariantValue(y []int64, c interface{ Get(int) int64 }) int64 {
	var acc int64
	for i, w := range y {
		acc += w * c.Get(i)
	}
	return acc
}
