// Package petri implements P-Petri nets and the arena-backed closure
// engine — forward reachability (ReachSet), backward coverability,
// Karp–Miller trees — that the verification experiments run on.
//
// The engine's performance contract (established in PR 4, pinned by
// reach_ref_test.go against a string-keyed reference implementation)
// rests on three invariants:
//
//   - Arena ownership. Every configuration discovered by a closure
//     lives once, flat, in a conf.CountSet arena; node id equals
//     insertion order, which equals BFS discovery order. Firing runs
//     through reusable scratch buffers (Index.FireInto, BackFireInto,
//     and the ω-aware variant Karp–Miller uses), so the search path
//     allocates nothing per step.
//   - CSR edge sharing. ReachSet records edges in compressed-sparse-
//     row form and ReachSet.CSR hands the offset/target/transition
//     arrays to internal/graph zero-copy: graph algorithms (SCC,
//     condensation, reverse reachability) read the closure's memory,
//     they do not copy it. The arrays are owned by the ReachSet and
//     immutable once exploration finishes.
//   - Deterministic parallel merge order. The optional parallel BFS
//     (Budget.Workers) expands wide levels with N workers firing into
//     private buffers, then merges their records serially in
//     (head, transition) order — exactly sequential exploration
//     order — so node ids, edges, shortest-word trees and truncation
//     points are byte-identical for every worker count, including
//     budget-truncated runs.
//
// Budgets (Budget.MaxConfigs, depth and agent caps) truncate
// deterministically: the closure returns with exactly the budgeted
// node count and an error that says the budget, not the instance,
// ended the search.
package petri
