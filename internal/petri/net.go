package petri

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/conf"
)

// Net is a P-Petri net: a finite set of transitions over a shared space.
// Nets are immutable after construction.
type Net struct {
	space *conf.Space
	trans []Transition

	idxOnce sync.Once
	idx     *Index
}

// New builds a net, validating that every transition is over the given
// space and that transition names are unique. Empty spaces are allowed:
// they arise as degenerate restrictions T|∅ in the bottom-configuration
// analysis of Section 6.
func New(space *conf.Space, trans []Transition) (*Net, error) {
	seen := make(map[string]bool, len(trans))
	owned := make([]Transition, len(trans))
	for i, t := range trans {
		if !t.Pre.Space().Equal(space) || !t.Post.Space().Equal(space) {
			return nil, fmt.Errorf("petri: transition %q not over space %v", t.Name, space)
		}
		if t.Name == "" {
			return nil, fmt.Errorf("petri: unnamed transition at index %d", i)
		}
		if seen[t.Name] {
			return nil, fmt.Errorf("petri: duplicate transition name %q", t.Name)
		}
		seen[t.Name] = true
		owned[i] = t
	}
	return &Net{space: space, trans: owned}, nil
}

// Space returns the net's state space.
func (n *Net) Space() *conf.Space { return n.space }

// Index returns the net's precomputed dependency index, building it on
// first use. It is safe for concurrent callers.
func (n *Net) Index() *Index {
	n.idxOnce.Do(func() { n.idx = buildIndex(n) })
	return n.idx
}

// Len returns the number of transitions |T|.
func (n *Net) Len() int { return len(n.trans) }

// At returns the i-th transition.
func (n *Net) At(i int) Transition { return n.trans[i] }

// Transitions returns a copy of the transition list.
func (n *Net) Transitions() []Transition {
	out := make([]Transition, len(n.trans))
	copy(out, n.trans)
	return out
}

// Width returns max_t |t|, the interaction-width of the net's
// reachability relation (Section 3).
func (n *Net) Width() int64 {
	var w int64
	for _, t := range n.trans {
		if tw := t.Width(); tw > w {
			w = tw
		}
	}
	return w
}

// NormInf returns ‖T‖∞ = max_t ‖t‖∞.
func (n *Net) NormInf() int64 {
	var m int64
	for _, t := range n.trans {
		if tm := t.NormInf(); tm > m {
			m = tm
		}
	}
	return m
}

// Conservative reports whether every transition preserves the agent
// count (the classical population-protocol setting).
func (n *Net) Conservative() bool {
	for _, t := range n.trans {
		if !t.Conservative() {
			return false
		}
	}
	return true
}

// Restrict returns the Q-Petri net T|Q = {t|Q : t ∈ T} (Section 5).
// Distinct transitions whose restrictions coincide are merged, keeping
// the first name.
func (n *Net) Restrict(q *conf.Space) (*Net, error) {
	seen := make(map[string]bool, len(n.trans))
	out := make([]Transition, 0, len(n.trans))
	for _, t := range n.trans {
		r := t.Restrict(q)
		key := r.Pre.Key() + "|" + r.Post.Key()
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, r)
	}
	return New(q, out)
}

// Enabled returns the indices of transitions enabled at c.
func (n *Net) Enabled(c conf.Config) []int {
	var out []int
	for i, t := range n.trans {
		if t.Enabled(c) {
			out = append(out, i)
		}
	}
	return out
}

// Successors returns every configuration reachable from c in one step,
// paired with the index of the fired transition.
func (n *Net) Successors(c conf.Config) []Step {
	out := make([]Step, 0, len(n.trans))
	for i, t := range n.trans {
		if next, ok := t.Fire(c); ok {
			out = append(out, Step{Trans: i, To: next})
		}
	}
	return out
}

// Step is one firing: the index of the transition and the configuration
// it produces.
type Step struct {
	Trans int
	To    conf.Config
}

// FireWord fires the word of transition indices from c, returning the
// final configuration. It fails if any step is disabled.
func (n *Net) FireWord(c conf.Config, word []int) (conf.Config, error) {
	cur := c
	for step, i := range word {
		if i < 0 || i >= len(n.trans) {
			return conf.Config{}, fmt.Errorf("petri: word step %d: no transition %d", step, i)
		}
		next, ok := n.trans[i].Fire(cur)
		if !ok {
			return conf.Config{}, fmt.Errorf("petri: word step %d: %q disabled at %v", step, n.trans[i].Name, cur)
		}
		cur = next
	}
	return cur, nil
}

// WordNames renders a word of transition indices as names.
func (n *Net) WordNames(word []int) []string {
	out := make([]string, len(word))
	for i, t := range word {
		out[i] = n.trans[t].Name
	}
	return out
}

// String renders the net one transition per line.
func (n *Net) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "petri net over %v (%d transitions, width %d)\n", n.space, n.Len(), n.Width())
	for _, t := range n.trans {
		fmt.Fprintf(&b, "  %v\n", t)
	}
	return b.String()
}
