package petri

import "sort"

// antichain maintains a set of pairwise-incomparable count vectors —
// the minimal basis of an upward-closed set, or the maximal visited
// set of a domination-pruned search — with sum-bucketed pruning:
// members are kept ordered by total agent count, so a domination query
// against c scans only the members whose sum makes domination possible
// (sum(b) ≤ sum(c) for b ≤ c, the other tail for b ≥ c) instead of the
// whole basis. Counts live in a flat arena with free-slot recycling;
// queries allocate nothing.
type antichain struct {
	width int
	arena []int64 // slot s's counts at arena[s*width : (s+1)*width]
	sums  []int64 // per slot
	order []int32 // live slots, sorted by sum ascending
	free  []int32
}

func newAntichain(width int) *antichain {
	return &antichain{width: width}
}

func (a *antichain) len() int { return len(a.order) }

func (a *antichain) at(slot int32) []int64 {
	lo := int(slot) * a.width
	return a.arena[lo : lo+a.width : lo+a.width]
}

// someLeq reports whether some member m satisfies m ≤ c; only members
// with sum(m) ≤ sum(c) are examined.
func (a *antichain) someLeq(c []int64, sumC int64) bool {
	for _, s := range a.order {
		if a.sums[s] > sumC {
			return false
		}
		if leqCounts(a.at(s), c) {
			return true
		}
	}
	return false
}

// someGeq reports whether some member m satisfies c ≤ m; only members
// with sum(m) ≥ sum(c) are examined.
func (a *antichain) someGeq(c []int64, sumC int64) bool {
	for i := len(a.order) - 1; i >= 0; i-- {
		s := a.order[i]
		if a.sums[s] < sumC {
			return false
		}
		if leqCounts(c, a.at(s)) {
			return true
		}
	}
	return false
}

// insertMinimal adds c to the antichain unless some member is ≤ c; it
// removes the members c is ≤ of (all in the sum ≥ sum(c) tail). It
// reports whether c was added. This is the minimal-basis maintenance
// step of the backward coverability algorithm.
func (a *antichain) insertMinimal(c []int64) bool {
	sumC := sumCounts(c)
	if a.someLeq(c, sumC) {
		return false // c is redundant in the upward closure
	}
	// Drop dominated members: c ≤ m implies sum(c) ≤ sum(m), so only
	// the tail of the order can be affected.
	kept := a.order
	for i := len(a.order) - 1; i >= 0; i-- {
		s := a.order[i]
		if a.sums[s] < sumC {
			break
		}
		if leqCounts(c, a.at(s)) {
			kept = append(kept[:i], kept[i+1:]...)
			a.free = append(a.free, s)
		}
	}
	a.order = kept
	a.insert(c, sumC)
	return true
}

// insertMaximal adds c, removing the members ≤ c (all in the
// sum ≤ sum(c) prefix). Callers check someGeq first; matching the
// historical insertMaximal, c is inserted unconditionally.
func (a *antichain) insertMaximal(c []int64) {
	sumC := sumCounts(c)
	kept := a.order[:0]
	for i, s := range a.order {
		if a.sums[s] > sumC {
			kept = append(kept, a.order[i:]...)
			break
		}
		if leqCounts(a.at(s), c) {
			a.free = append(a.free, s)
			continue
		}
		kept = append(kept, s)
	}
	a.order = kept
	a.insert(c, sumC)
}

// insert copies c into a slot and places it in sum order.
func (a *antichain) insert(c []int64, sumC int64) {
	var slot int32
	if n := len(a.free); n > 0 {
		slot = a.free[n-1]
		a.free = a.free[:n-1]
		copy(a.at(slot), c)
	} else {
		slot = int32(len(a.sums))
		a.arena = append(a.arena, c...)
		a.sums = append(a.sums, 0)
	}
	a.sums[slot] = sumC
	pos := sort.Search(len(a.order), func(i int) bool { return a.sums[a.order[i]] > sumC })
	a.order = append(a.order, 0)
	copy(a.order[pos+1:], a.order[pos:])
	a.order[pos] = slot
}

func leqCounts(a, b []int64) bool {
	for i, v := range a {
		if v > b[i] {
			return false
		}
	}
	return true
}
