package petri

import (
	"errors"

	"repro/internal/conf"
)

// Coverable decides whether target is T-coverable from the given
// configuration: whether some β ≥ target is reachable. It runs the
// classical backward algorithm over minimal bases of upward-closed sets,
// which terminates by Dickson's lemma; maxBasis (0 = default) caps the
// basis size defensively.
func (n *Net) Coverable(from, target conf.Config, maxBasis int) (bool, error) {
	if !from.Space().Equal(n.space) || !target.Space().Equal(n.space) {
		return false, errors.New("petri: coverability arguments over wrong space")
	}
	if maxBasis <= 0 {
		maxBasis = DefaultMaxConfigs
	}
	// basis is a minimal antichain whose upward closure is the set of
	// configurations from which target is coverable.
	basis := []conf.Config{target}
	frontier := []conf.Config{target}
	for len(frontier) > 0 {
		if covered(basis, from) {
			return true, nil
		}
		var next []conf.Config
		for _, m := range frontier {
			for _, t := range n.trans {
				pred := t.BackFire(m)
				if insertMinimal(&basis, pred) {
					next = append(next, pred)
				}
			}
		}
		if len(basis) > maxBasis {
			return false, errBudget("coverable", len(basis))
		}
		frontier = next
	}
	return covered(basis, from), nil
}

// covered reports whether c is in the upward closure of the basis.
func covered(basis []conf.Config, c conf.Config) bool {
	for _, b := range basis {
		if b.Leq(c) {
			return true
		}
	}
	return false
}

// insertMinimal adds cand to the antichain unless it is dominated;
// it removes elements cand dominates. It reports whether cand was added.
func insertMinimal(basis *[]conf.Config, cand conf.Config) bool {
	for _, b := range *basis {
		if b.Leq(cand) {
			return false // cand is redundant
		}
	}
	kept := (*basis)[:0]
	for _, b := range *basis {
		if !cand.Leq(b) {
			kept = append(kept, b)
		}
	}
	*basis = append(kept, cand)
	return true
}

// CoverWitness is the result of a shortest covering-word search.
type CoverWitness struct {
	// Word is a shortest firing word σ with from —σ→ β ≥ target.
	Word []int
	// Reached is the covering configuration β.
	Reached conf.Config
}

// ShortestCoveringWord searches breadth-first for a shortest word
// covering target from the given configuration. Configurations dominated
// by an already-visited one are pruned, which is sound for coverability
// because enabledness and coverage are upward monotone. It returns nil
// (no error) when target is provably not coverable within the budget
// semantics, and a wrapped ErrBudget when the search was truncated.
//
// The measured |Word| is the quantity Lemma 5.3 (Rackoff) bounds by
// (‖target‖∞ + ‖T‖∞)^(|P|^|P|).
func (n *Net) ShortestCoveringWord(from, target conf.Config, budget Budget) (*CoverWitness, error) {
	if !from.Space().Equal(n.space) || !target.Space().Equal(n.space) {
		return nil, errors.New("petri: coverability arguments over wrong space")
	}
	if target.Leq(from) {
		return &CoverWitness{Word: nil, Reached: from}, nil
	}
	type node struct {
		cfg    conf.Config
		parent int
		via    int
	}
	nodes := []node{{cfg: from, parent: -1, via: -1}}
	// maximal is the antichain of visited configurations used for
	// domination pruning.
	maximal := []conf.Config{from}
	maxConfigs := budget.maxConfigs()

	extract := func(i int) []int {
		var rev []int
		for cur := i; nodes[cur].parent >= 0; cur = nodes[cur].parent {
			rev = append(rev, nodes[cur].via)
		}
		for a, b := 0, len(rev)-1; a < b; a, b = a+1, b-1 {
			rev[a], rev[b] = rev[b], rev[a]
		}
		return rev
	}

	for head := 0; head < len(nodes); head++ {
		cur := nodes[head].cfg
		for ti, t := range n.trans {
			next, ok := t.Fire(cur)
			if !ok {
				continue
			}
			if budget.MaxAgents > 0 && next.Agents() > budget.MaxAgents {
				return nil, errBudget("cover-search", len(nodes))
			}
			if dominatedBy(maximal, next) {
				continue
			}
			nodes = append(nodes, node{cfg: next, parent: head, via: ti})
			if target.Leq(next) {
				return &CoverWitness{Word: extract(len(nodes) - 1), Reached: next}, nil
			}
			insertMaximal(&maximal, next)
			if len(nodes) >= maxConfigs {
				return nil, errBudget("cover-search", len(nodes))
			}
		}
	}
	return nil, nil
}

// dominatedBy reports whether some element of the antichain dominates c.
func dominatedBy(maximal []conf.Config, c conf.Config) bool {
	for _, m := range maximal {
		if c.Leq(m) {
			return true
		}
	}
	return false
}

// insertMaximal adds cand to the antichain of maximal visited
// configurations, dropping the elements it dominates.
func insertMaximal(maximal *[]conf.Config, cand conf.Config) {
	kept := (*maximal)[:0]
	for _, m := range *maximal {
		if !m.Leq(cand) {
			kept = append(kept, m)
		}
	}
	*maximal = append(kept, cand)
}
