package petri

import (
	"errors"

	"repro/internal/conf"
)

// Coverable decides whether target is T-coverable from the given
// configuration: whether some β ≥ target is reachable. It runs the
// classical backward algorithm over minimal bases of upward-closed sets,
// which terminates by Dickson's lemma; maxBasis (0 = default) caps the
// basis size defensively. The basis is a sum-bucketed antichain with
// all predecessor steps fired into a scratch buffer: no configuration
// is allocated on the search path.
func (n *Net) Coverable(from, target conf.Config, maxBasis int) (bool, error) {
	if !from.Space().Equal(n.space) || !target.Space().Equal(n.space) {
		return false, errors.New("petri: coverability arguments over wrong space")
	}
	if maxBasis <= 0 {
		maxBasis = DefaultMaxConfigs
	}
	d := n.space.Len()
	idx := n.Index()
	fromCounts := from.RawCounts()
	fromSum := sumCounts(fromCounts)

	// basis is a minimal antichain whose upward closure is the set of
	// configurations from which target is coverable.
	basis := newAntichain(d)
	basis.insertMinimal(target.RawCounts())
	frontier := append([]int64(nil), target.RawCounts()...)
	var next []int64
	scratch := make([]int64, d)

	for len(frontier) > 0 {
		if basis.someLeq(fromCounts, fromSum) {
			return true, nil
		}
		next = next[:0]
		for off := 0; off < len(frontier); off += d {
			m := frontier[off : off+d]
			for ti := 0; ti < len(n.trans); ti++ {
				idx.BackFireInto(ti, m, scratch)
				if basis.insertMinimal(scratch) {
					next = append(next, scratch...)
				}
			}
		}
		if basis.len() > maxBasis {
			return false, errBudget("coverable", basis.len())
		}
		frontier, next = next, frontier
	}
	return basis.someLeq(fromCounts, fromSum), nil
}

// CoverWitness is the result of a shortest covering-word search.
type CoverWitness struct {
	// Word is a shortest firing word σ with from —σ→ β ≥ target.
	Word []int
	// Reached is the covering configuration β.
	Reached conf.Config
}

// ShortestCoveringWord searches breadth-first for a shortest word
// covering target from the given configuration. Configurations dominated
// by an already-visited one are pruned, which is sound for coverability
// because enabledness and coverage are upward monotone; the visited
// maximal set is a sum-bucketed antichain, and the BFS nodes live in a
// flat arena. It returns nil (no error) when target is provably not
// coverable within the budget semantics, and a wrapped ErrBudget when
// the search was truncated.
//
// The measured |Word| is the quantity Lemma 5.3 (Rackoff) bounds by
// (‖target‖∞ + ‖T‖∞)^(|P|^|P|).
func (n *Net) ShortestCoveringWord(from, target conf.Config, budget Budget) (*CoverWitness, error) {
	if !from.Space().Equal(n.space) || !target.Space().Equal(n.space) {
		return nil, errors.New("petri: coverability arguments over wrong space")
	}
	if target.Leq(from) {
		return &CoverWitness{Word: nil, Reached: from}, nil
	}
	d := n.space.Len()
	idx := n.Index()
	targetCounts := target.RawCounts()

	// nodes live flat: counts in buf, tree links alongside.
	buf := append([]int64(nil), from.RawCounts()...)
	parent := []int32{-1}
	via := []int32{-1}
	numNodes := 1
	// maximal is the antichain of visited configurations used for
	// domination pruning.
	maximal := newAntichain(d)
	maximal.insertMaximal(from.RawCounts())
	maxConfigs := budget.maxConfigs()
	scratch := make([]int64, d)

	extract := func(i int) []int {
		var rev []int
		for cur := i; parent[cur] >= 0; cur = int(parent[cur]) {
			rev = append(rev, int(via[cur]))
		}
		for a, b := 0, len(rev)-1; a < b; a, b = a+1, b-1 {
			rev[a], rev[b] = rev[b], rev[a]
		}
		return rev
	}

	for head := 0; head < numNodes; head++ {
		cur := buf[head*d : (head+1)*d]
		for ti := 0; ti < len(n.trans); ti++ {
			if !idx.FireInto(ti, cur, scratch) {
				continue
			}
			sum := sumCounts(scratch)
			if budget.MaxAgents > 0 && sum > budget.MaxAgents {
				return nil, errBudget("cover-search", numNodes)
			}
			if maximal.someGeq(scratch, sum) {
				continue
			}
			buf = append(buf, scratch...)
			parent = append(parent, int32(head))
			via = append(via, int32(ti))
			numNodes++
			if leqCounts(targetCounts, scratch) {
				reached, err := conf.FromSlice(n.space, scratch)
				if err != nil {
					// Unreachable: fired counts are non-negative.
					panic(err)
				}
				return &CoverWitness{Word: extract(numNodes - 1), Reached: reached}, nil
			}
			maximal.insertMaximal(scratch)
			if numNodes >= maxConfigs {
				return nil, errBudget("cover-search", numNodes)
			}
		}
	}
	return nil, nil
}
