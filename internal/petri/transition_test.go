package petri

import (
	"testing"
	"testing/quick"

	"repro/internal/conf"
)

var tSpace = conf.MustSpace("a", "b", "c")

func mk(t *testing.T, name string, pre, post map[string]int64) Transition {
	t.Helper()
	tr, err := NewTransition(name, conf.MustFromMap(tSpace, pre), conf.MustFromMap(tSpace, post))
	if err != nil {
		t.Fatalf("NewTransition(%s): %v", name, err)
	}
	return tr
}

func TestTransitionBasics(t *testing.T) {
	tr := mk(t, "t", map[string]int64{"a": 2}, map[string]int64{"b": 1, "c": 3})
	if got := tr.Width(); got != 4 {
		t.Errorf("Width = %d, want 4", got)
	}
	if got := tr.NormInf(); got != 3 {
		t.Errorf("NormInf = %d, want 3", got)
	}
	if tr.Conservative() {
		t.Error("non-conservative transition reported conservative")
	}
	delta := tr.Delta()
	iA, _ := tSpace.Index("a")
	iC, _ := tSpace.Index("c")
	if delta[iA] != -2 || delta[iC] != 3 {
		t.Errorf("Delta = %v", delta)
	}
}

func TestTransitionValidation(t *testing.T) {
	other := conf.MustSpace("x")
	if _, err := NewTransition("t", conf.New(tSpace), conf.New(other)); err == nil {
		t.Error("mixed-space transition accepted")
	}
	if _, err := NewTransition("", conf.New(tSpace), conf.New(tSpace)); err == nil {
		t.Error("unnamed transition accepted")
	}
}

func TestFire(t *testing.T) {
	tr := mk(t, "t", map[string]int64{"a": 1, "b": 1}, map[string]int64{"c": 2})
	from := conf.MustFromMap(tSpace, map[string]int64{"a": 1, "b": 2})
	got, ok := tr.Fire(from)
	if !ok {
		t.Fatal("Fire disabled, want enabled")
	}
	want := conf.MustFromMap(tSpace, map[string]int64{"b": 1, "c": 2})
	if !got.Equal(want) {
		t.Errorf("Fire = %v, want %v", got, want)
	}
	if _, ok := tr.Fire(conf.MustFromMap(tSpace, map[string]int64{"a": 1})); ok {
		t.Error("Fire succeeded while disabled")
	}
}

// Property (additivity, Section 2): α —t→ β implies α+ρ —t→ β+ρ.
func TestQuickFireAdditive(t *testing.T) {
	tr := mk(t, "t", map[string]int64{"a": 1, "b": 1}, map[string]int64{"c": 1})
	gen := func(raw [3]uint8) conf.Config {
		m := map[string]int64{}
		for i, name := range []string{"a", "b", "c"} {
			m[name] = int64(raw[i] % 8)
		}
		return conf.MustFromMap(tSpace, m)
	}
	additive := func(x, y [3]uint8) bool {
		alpha, rho := gen(x), gen(y)
		beta, ok := tr.Fire(alpha)
		if !ok {
			return true // vacuous
		}
		beta2, ok2 := tr.Fire(alpha.Add(rho))
		return ok2 && beta2.Equal(beta.Add(rho))
	}
	if err := quick.Check(additive, nil); err != nil {
		t.Errorf("firing not additive: %v", err)
	}
}

func TestBackFire(t *testing.T) {
	// t: a -> 2b. To cover {b:3} we need max(pre, target−Δ):
	// a: max(1, 0−(−1)) = 1; b: max(0, 3−2) = 1.
	tr := mk(t, "t", map[string]int64{"a": 1}, map[string]int64{"b": 2})
	target := conf.MustFromMap(tSpace, map[string]int64{"b": 3})
	got := tr.BackFire(target)
	want := conf.MustFromMap(tSpace, map[string]int64{"a": 1, "b": 1})
	if !got.Equal(want) {
		t.Errorf("BackFire = %v, want %v", got, want)
	}
	// Firing t from the BackFire result must cover the target.
	after, ok := tr.Fire(got)
	if !ok || !target.Leq(after) {
		t.Errorf("BackFire result does not cover: %v, %v", after, ok)
	}
}

func TestRestrictTransition(t *testing.T) {
	tr := mk(t, "t", map[string]int64{"a": 1, "b": 1}, map[string]int64{"c": 2})
	q := conf.MustSpace("a", "c")
	r := tr.Restrict(q)
	if r.Pre.GetName("a") != 1 || r.Pre.Agents() != 1 {
		t.Errorf("restricted pre = %v", r.Pre)
	}
	if r.Post.GetName("c") != 2 || r.Post.Agents() != 2 {
		t.Errorf("restricted post = %v", r.Post)
	}
}
