package petri

import (
	"reflect"
	"sort"
	"testing"

	"repro/internal/conf"
)

func TestIndexChain(t *testing.T) {
	n := chainNet(t) // ab: a->b, bc: b->c
	idx := n.Index()
	if idx != n.Index() {
		t.Error("Index not cached")
	}
	if got := idx.Pre(0); !reflect.DeepEqual(got, []SparseEntry{{State: 0, N: 1}}) {
		t.Errorf("Pre(ab) = %v", got)
	}
	if got := idx.Delta(0); !reflect.DeepEqual(got, []SparseEntry{{State: 0, N: -1}, {State: 1, N: 1}}) {
		t.Errorf("Delta(ab) = %v", got)
	}
	if got := idx.Dependents(1); !reflect.DeepEqual(got, []int{1}) {
		t.Errorf("Dependents(b) = %v", got)
	}
	if got := idx.Dependents(2); len(got) != 0 {
		t.Errorf("Dependents(c) = %v, want none", got)
	}
	// Firing ab changes a and b, affecting both transitions; firing bc
	// changes b and c, affecting only bc (nothing depends on c).
	for ti, want := range [][]int{{0, 1}, {1}} {
		got := append([]int(nil), idx.Affected(ti)...)
		sort.Ints(got)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("Affected(%d) = %v, want %v", ti, got, want)
		}
	}
}

func TestIndexAggregateDelta(t *testing.T) {
	n := chainNet(t) // ab: a->b, bc: b->c
	idx := n.Index()
	disp := make([]int64, 3)
	// 5 firings of ab and 3 of bc: a -5, b +5-3, c +3, accumulated on
	// top of whatever is already in disp.
	disp[2] = 1
	idx.AggregateDelta([]int64{5, 3}, disp)
	if want := []int64{-5, 2, 4}; !reflect.DeepEqual(disp, want) {
		t.Errorf("AggregateDelta = %v, want %v", disp, want)
	}
	// All-zero fires touch nothing.
	before := append([]int64(nil), disp...)
	idx.AggregateDelta([]int64{0, 0}, disp)
	if !reflect.DeepEqual(disp, before) {
		t.Errorf("zero fires mutated disp: %v", disp)
	}
}

func TestIndexCatalyst(t *testing.T) {
	// A catalyst state (equal pre and post counts) is in Pre but not in
	// Delta: its count never changes when the transition fires, so it
	// must not drag its dependents into the affected set.
	space := conf.MustSpace("x", "c", "y")
	u := func(n string) conf.Config { return conf.MustUnit(space, n) }
	cat, err := NewTransition("cat", u("x").Add(u("c")), u("y").Add(u("c")))
	if err != nil {
		t.Fatalf("NewTransition: %v", err)
	}
	onC, err := NewTransition("onC", u("c").Add(u("c")), u("x").Add(u("x")))
	if err != nil {
		t.Fatalf("NewTransition: %v", err)
	}
	n, err := New(space, []Transition{cat, onC})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	idx := n.Index()
	if got := idx.Delta(0); !reflect.DeepEqual(got, []SparseEntry{{State: 0, N: -1}, {State: 2, N: 1}}) {
		t.Errorf("Delta(cat) = %v: catalyst c must not appear", got)
	}
	// cat's delta touches x and y only; onC depends on c alone, so cat
	// affects cat itself (via x) and not onC.
	got := append([]int(nil), idx.Affected(0)...)
	sort.Ints(got)
	if !reflect.DeepEqual(got, []int{0}) {
		t.Errorf("Affected(cat) = %v, want [0]", got)
	}
	// onC consumes two c's and produces two x's: it affects cat (via x)
	// and itself (via c).
	got = append([]int(nil), idx.Affected(1)...)
	sort.Ints(got)
	if !reflect.DeepEqual(got, []int{0, 1}) {
		t.Errorf("Affected(onC) = %v, want [0 1]", got)
	}
}

func TestIndexEmptyPre(t *testing.T) {
	// Creation-only transitions have empty preconditions: no
	// dependents entries, weight constant 1.
	space := conf.MustSpace("x")
	mk, err := NewTransition("mk", conf.New(space), conf.MustUnit(space, "x"))
	if err != nil {
		t.Fatalf("NewTransition: %v", err)
	}
	n, err := New(space, []Transition{mk})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	idx := n.Index()
	if len(idx.Pre(0)) != 0 {
		t.Errorf("Pre(mk) = %v, want empty", idx.Pre(0))
	}
	if len(idx.Affected(0)) != 0 {
		t.Errorf("Affected(mk) = %v, want empty (nothing depends on x)", idx.Affected(0))
	}
}
