// Package petri implements Petri nets over conf.Space state spaces:
// transitions, firing, budgeted reachability closures, coverability
// (backward algorithm and shortest-witness search) and the Karp–Miller
// coverability tree.
//
// Following Section 3 of Leroux (PODC 2022), a P-transition is a pair
// t = (α_t, β_t) of P-configurations, its interaction-width is
// |t| = max(|α_t|, |β_t|), and a Petri net is a finite set of
// transitions. Nets are not required to be conservative: transitions may
// create or destroy agents, as in the Angluin–Aspnes–Eisenstat model
// with creations/destructions the paper builds on.
package petri

import (
	"fmt"

	"repro/internal/conf"
)

// Transition is a P-transition t = (Pre, Post). Firing removes Pre and
// adds Post. Transitions are immutable after construction.
type Transition struct {
	// Name identifies the transition in diagnostics and witnesses.
	Name string
	// Pre is α_t, the multiset of agents consumed.
	Pre conf.Config
	// Post is β_t, the multiset of agents produced.
	Post conf.Config
}

// NewTransition builds a named transition, validating that both sides
// are over the same space.
func NewTransition(name string, pre, post conf.Config) (Transition, error) {
	if name == "" {
		return Transition{}, fmt.Errorf("petri: empty transition name")
	}
	if !pre.Space().Equal(post.Space()) {
		return Transition{}, fmt.Errorf("petri: transition %q mixes spaces", name)
	}
	return Transition{Name: name, Pre: pre, Post: post}, nil
}

// Width returns the interaction-width |t| = max(|Pre|, |Post|).
func (t Transition) Width() int64 {
	pre, post := t.Pre.Agents(), t.Post.Agents()
	if pre > post {
		return pre
	}
	return post
}

// NormInf returns ‖t‖∞ = max(‖Pre‖∞, ‖Post‖∞).
func (t Transition) NormInf() int64 {
	pre, post := t.Pre.NormInf(), t.Post.NormInf()
	if pre > post {
		return pre
	}
	return post
}

// Delta returns the displacement Δ(t)(p) = Post(p) − Pre(p) as a dense
// vector indexed by state.
func (t Transition) Delta() []int64 {
	d := make([]int64, t.Pre.Space().Len())
	for i := range d {
		d[i] = t.Post.Get(i) - t.Pre.Get(i)
	}
	return d
}

// Conservative reports whether the transition preserves the number of
// agents.
func (t Transition) Conservative() bool {
	return t.Pre.Agents() == t.Post.Agents()
}

// Enabled reports whether t can fire from c, i.e. Pre ≤ c.
func (t Transition) Enabled(c conf.Config) bool {
	return t.Pre.Leq(c)
}

// Fire returns the configuration reached by firing t from c, and ok
// reporting whether t was enabled.
func (t Transition) Fire(c conf.Config) (conf.Config, bool) {
	rest, ok := c.Sub(t.Pre)
	if !ok {
		return conf.Config{}, false
	}
	return rest.Add(t.Post), true
}

// BackFire returns the minimal configuration from which firing t covers
// target: max(Pre, target − Δ(t)) componentwise. It is the predecessor
// basis step of the backward coverability algorithm.
func (t Transition) BackFire(target conf.Config) conf.Config {
	space := target.Space()
	counts := make([]int64, space.Len())
	for i := range counts {
		need := target.Get(i) - (t.Post.Get(i) - t.Pre.Get(i))
		if pre := t.Pre.Get(i); need < pre {
			need = pre
		}
		counts[i] = need
	}
	out, err := conf.FromSlice(space, counts)
	if err != nil {
		// Unreachable: counts are clamped at Pre ≥ 0.
		panic(err)
	}
	return out
}

// Restrict returns t|Q, the transition whose sides are restricted to the
// target space (Section 5 of the paper).
func (t Transition) Restrict(q *conf.Space) Transition {
	return Transition{Name: t.Name, Pre: t.Pre.Restrict(q), Post: t.Post.Restrict(q)}
}

// String renders the transition as "name: pre -> post".
func (t Transition) String() string {
	return fmt.Sprintf("%s: %v -> %v", t.Name, t.Pre, t.Post)
}
