package conf

import "fmt"

// EnumerateTotal calls fn with every configuration over the space having
// exactly total agents (the compositions of total into |P| parts), in
// lexicographic order of counts. Enumeration stops early if fn returns
// false. The Config passed to fn is reused between calls; clone it to
// retain it.
func EnumerateTotal(space *Space, total int64, fn func(Config) bool) error {
	if total < 0 {
		return fmt.Errorf("conf: negative total %d", total)
	}
	if space.Len() == 0 {
		if total == 0 {
			fn(New(space))
		}
		return nil
	}
	c := New(space)
	var rec func(pos int, remaining int64) bool
	rec = func(pos int, remaining int64) bool {
		if pos == space.Len()-1 {
			c.v[pos] = remaining
			ok := fn(c)
			c.v[pos] = 0
			return ok
		}
		for take := int64(0); take <= remaining; take++ {
			c.v[pos] = take
			if !rec(pos+1, remaining-take) {
				c.v[pos] = 0
				return false
			}
		}
		c.v[pos] = 0
		return true
	}
	rec(0, total)
	return nil
}

// EnumerateUpTo calls fn with every configuration having at most total
// agents, grouped by increasing total. The Config passed to fn is reused
// between calls; clone it to retain it.
func EnumerateUpTo(space *Space, total int64, fn func(Config) bool) error {
	for t := int64(0); t <= total; t++ {
		stopped := false
		err := EnumerateTotal(space, t, func(c Config) bool {
			if !fn(c) {
				stopped = true
				return false
			}
			return true
		})
		if err != nil {
			return err
		}
		if stopped {
			return nil
		}
	}
	return nil
}

// CountTotal returns the number of configurations with exactly total
// agents over a d-state space: C(total+d−1, d−1). It saturates at
// math.MaxInt64 on overflow, which callers treat as "too many".
func CountTotal(d int, total int64) int64 {
	if d <= 0 {
		if total == 0 {
			return 1
		}
		return 0
	}
	// Multiplicative binomial evaluation, guarding overflow.
	const maxInt64 = int64(^uint64(0) >> 1)
	result := int64(1)
	for i := int64(1); i < int64(d); i++ {
		// result *= (total + i); result /= i — keep exact by dividing the
		// running product, which is always integral for binomials.
		hi := total + i
		if result > maxInt64/hi {
			return maxInt64
		}
		result = result * hi / i
	}
	return result
}
