// Package conf provides finite state spaces and configurations for
// population protocols and Petri nets.
//
// A Space is an interned, ordered, finite set of named states (the set P
// of the paper). A Config is a multiset over a Space, i.e. a mapping in
// ℕ^P; Config values are the fundamental objects of the protocol model:
// populations, markings, leader configurations and transition sides are
// all Configs.
//
// Terminology follows Leroux, "State Complexity of Protocols With
// Leaders" (PODC 2022), Section 2.
package conf

import (
	"fmt"
	"sort"
	"strings"
)

// Space is an immutable, ordered finite set of states. The zero value is
// the empty space; use NewSpace to build a non-empty one. States are
// identified by name at the API boundary and by dense index internally.
type Space struct {
	names []string
	index map[string]int
}

// NewSpace builds a space from the given state names, preserving order.
// It returns an error if a name is empty or duplicated.
func NewSpace(names ...string) (*Space, error) {
	s := &Space{
		names: make([]string, 0, len(names)),
		index: make(map[string]int, len(names)),
	}
	for _, name := range names {
		if name == "" {
			return nil, fmt.Errorf("conf: empty state name at position %d", len(s.names))
		}
		if _, dup := s.index[name]; dup {
			return nil, fmt.Errorf("conf: duplicate state name %q", name)
		}
		s.index[name] = len(s.names)
		s.names = append(s.names, name)
	}
	return s, nil
}

// MustSpace is NewSpace for statically known, valid name lists. It is
// intended for tests, examples and generated constructions; it panics on
// the errors NewSpace would report.
func MustSpace(names ...string) *Space {
	s, err := NewSpace(names...)
	if err != nil {
		panic(err)
	}
	return s
}

// Len returns the number of states |P|.
func (s *Space) Len() int {
	if s == nil {
		return 0
	}
	return len(s.names)
}

// Name returns the name of the state with the given index.
func (s *Space) Name(i int) string { return s.names[i] }

// Index returns the index of the named state and whether it exists.
func (s *Space) Index(name string) (int, bool) {
	i, ok := s.index[name]
	return i, ok
}

// Contains reports whether the named state belongs to the space.
func (s *Space) Contains(name string) bool {
	_, ok := s.index[name]
	return ok
}

// Names returns a copy of the ordered state names.
func (s *Space) Names() []string {
	out := make([]string, len(s.names))
	copy(out, s.names)
	return out
}

// Sub builds the sub-space consisting of the given named states, in the
// given order. It returns an error if a name is unknown or duplicated.
func (s *Space) Sub(names ...string) (*Space, error) {
	for _, name := range names {
		if !s.Contains(name) {
			return nil, fmt.Errorf("conf: state %q not in space", name)
		}
	}
	return NewSpace(names...)
}

// IndexMap returns, for each state of q in order, the index of the
// same-named state in s, or −1 when s does not contain it. It is the
// precomputed form of the per-name Index lookups behind
// Config.Restrict, for callers restricting many configurations to the
// same sub-space (Config.RestrictInto).
func (s *Space) IndexMap(q *Space) []int {
	out := make([]int, q.Len())
	for i := 0; i < q.Len(); i++ {
		if j, ok := s.Index(q.Name(i)); ok {
			out[i] = j
		} else {
			out[i] = -1
		}
	}
	return out
}

// String renders the space as {p, q, ...}.
func (s *Space) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, name := range s.names {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(name)
	}
	b.WriteByte('}')
	return b.String()
}

// Equal reports whether two spaces have the same states in the same order.
func (s *Space) Equal(t *Space) bool {
	if s.Len() != t.Len() {
		return false
	}
	for i, name := range s.names {
		if t.names[i] != name {
			return false
		}
	}
	return true
}

// SortedNames returns the state names in lexicographic order. It is used
// by deterministic printers.
func (s *Space) SortedNames() []string {
	out := s.Names()
	sort.Strings(out)
	return out
}
