package conf

import (
	"testing"
	"testing/quick"
)

var testSpace = MustSpace("i", "p", "q", "r")

// randomConfig converts arbitrary quick-generated values into a valid
// configuration over testSpace with small non-negative counts.
func randomConfig(raw [4]int16) Config {
	c := New(testSpace)
	for i, n := range raw {
		v := int64(n)
		if v < 0 {
			v = -v
		}
		c.v[i] = v % 64
	}
	return c
}

func TestFromMapAndCounts(t *testing.T) {
	c, err := FromMap(testSpace, map[string]int64{"i": 2, "q": 5})
	if err != nil {
		t.Fatalf("FromMap: %v", err)
	}
	if got := c.GetName("i"); got != 2 {
		t.Errorf("i = %d, want 2", got)
	}
	if got := c.GetName("q"); got != 5 {
		t.Errorf("q = %d, want 5", got)
	}
	if got := c.Agents(); got != 7 {
		t.Errorf("Agents = %d, want 7", got)
	}
	counts := c.Counts()
	if len(counts) != 2 || counts["i"] != 2 || counts["q"] != 5 {
		t.Errorf("Counts = %v", counts)
	}
}

func TestFromMapErrors(t *testing.T) {
	if _, err := FromMap(testSpace, map[string]int64{"zz": 1}); err == nil {
		t.Error("unknown state accepted")
	}
	if _, err := FromMap(testSpace, map[string]int64{"i": -1}); err == nil {
		t.Error("negative count accepted")
	}
}

func TestUnit(t *testing.T) {
	u := MustUnit(testSpace, "p")
	if u.Agents() != 1 || u.GetName("p") != 1 {
		t.Fatalf("Unit(p) = %v", u)
	}
	if _, err := Unit(testSpace, "nope"); err == nil {
		t.Error("Unit of unknown state accepted")
	}
}

func TestAddSub(t *testing.T) {
	a := MustFromMap(testSpace, map[string]int64{"i": 3, "p": 1})
	b := MustFromMap(testSpace, map[string]int64{"i": 1, "q": 2})
	sum := a.Add(b)
	if sum.GetName("i") != 4 || sum.GetName("p") != 1 || sum.GetName("q") != 2 {
		t.Fatalf("Add = %v", sum)
	}
	diff, ok := sum.Sub(b)
	if !ok || !diff.Equal(a) {
		t.Fatalf("Sub round-trip = %v, %v", diff, ok)
	}
	if _, ok := a.Sub(b); ok {
		t.Error("Sub below zero succeeded")
	}
}

func TestLeqEqual(t *testing.T) {
	a := MustFromMap(testSpace, map[string]int64{"i": 1})
	b := MustFromMap(testSpace, map[string]int64{"i": 2, "p": 1})
	if !a.Leq(b) {
		t.Error("a ≤ b expected")
	}
	if b.Leq(a) {
		t.Error("b ≤ a unexpected")
	}
	if !a.Equal(a.Clone()) {
		t.Error("clone not Equal")
	}
}

func TestRestrict(t *testing.T) {
	c := MustFromMap(testSpace, map[string]int64{"i": 2, "p": 3})
	q := MustSpace("p", "z") // z is outside the source space
	r := c.Restrict(q)
	if r.GetName("p") != 3 {
		t.Errorf("restricted p = %d, want 3", r.GetName("p"))
	}
	if r.GetName("z") != 0 {
		t.Errorf("restricted z = %d, want 0", r.GetName("z"))
	}
	if r.Agents() != 3 {
		t.Errorf("restricted agents = %d, want 3", r.Agents())
	}
}

func TestEmbed(t *testing.T) {
	small := MustSpace("p", "q")
	c := MustFromMap(small, map[string]int64{"p": 2})
	e, err := c.Embed(testSpace)
	if err != nil {
		t.Fatalf("Embed: %v", err)
	}
	if e.GetName("p") != 2 || e.Agents() != 2 {
		t.Fatalf("Embed = %v", e)
	}
	other := MustSpace("w")
	w := MustUnit(other, "w")
	if _, err := w.Embed(testSpace); err == nil {
		t.Error("Embed of foreign state accepted")
	}
}

func TestZeroOutside(t *testing.T) {
	c := MustFromMap(testSpace, map[string]int64{"p": 1})
	keep := make([]bool, testSpace.Len())
	iP, _ := testSpace.Index("p")
	keep[iP] = true
	if !c.ZeroOutside(keep) {
		t.Error("ZeroOutside false, want true")
	}
	keep[iP] = false
	if c.ZeroOutside(keep) {
		t.Error("ZeroOutside true, want false")
	}
}

func TestKeyDistinguishes(t *testing.T) {
	a := MustFromMap(testSpace, map[string]int64{"i": 1})
	b := MustFromMap(testSpace, map[string]int64{"p": 1})
	if a.Key() == b.Key() {
		t.Error("distinct configs share a key")
	}
	if a.Key() != a.Clone().Key() {
		t.Error("clone has different key")
	}
}

func TestString(t *testing.T) {
	if got := New(testSpace).String(); got != "0" {
		t.Errorf("zero config String = %q, want 0", got)
	}
	c := MustFromMap(testSpace, map[string]int64{"i": 2, "p": 1})
	if got := c.String(); got != "2·i + p" {
		t.Errorf("String = %q", got)
	}
}

func TestWithName(t *testing.T) {
	c := MustFromMap(testSpace, map[string]int64{"i": 2})
	d, err := c.WithName("p", 7)
	if err != nil {
		t.Fatalf("WithName: %v", err)
	}
	if d.GetName("p") != 7 || c.GetName("p") != 0 {
		t.Error("WithName mutated receiver or failed to set")
	}
	if _, err := c.WithName("nope", 1); err == nil {
		t.Error("WithName unknown state accepted")
	}
	if _, err := c.WithName("p", -1); err == nil {
		t.Error("WithName negative accepted")
	}
}

// Property: Add is commutative and associative; Sub inverts Add.
func TestQuickAddLaws(t *testing.T) {
	commutes := func(x, y [4]int16) bool {
		a, b := randomConfig(x), randomConfig(y)
		return a.Add(b).Equal(b.Add(a))
	}
	if err := quick.Check(commutes, nil); err != nil {
		t.Errorf("Add not commutative: %v", err)
	}
	assoc := func(x, y, z [4]int16) bool {
		a, b, c := randomConfig(x), randomConfig(y), randomConfig(z)
		return a.Add(b).Add(c).Equal(a.Add(b.Add(c)))
	}
	if err := quick.Check(assoc, nil); err != nil {
		t.Errorf("Add not associative: %v", err)
	}
	inverts := func(x, y [4]int16) bool {
		a, b := randomConfig(x), randomConfig(y)
		d, ok := a.Add(b).Sub(b)
		return ok && d.Equal(a)
	}
	if err := quick.Check(inverts, nil); err != nil {
		t.Errorf("Sub does not invert Add: %v", err)
	}
}

// Property: ≤ is monotone under Add, and Restrict is linear.
func TestQuickOrderAndRestrict(t *testing.T) {
	mono := func(x, y [4]int16) bool {
		a, b := randomConfig(x), randomConfig(y)
		return a.Leq(a.Add(b))
	}
	if err := quick.Check(mono, nil); err != nil {
		t.Errorf("≤ not monotone: %v", err)
	}
	sub := MustSpace("p", "r")
	linear := func(x, y [4]int16) bool {
		a, b := randomConfig(x), randomConfig(y)
		return a.Add(b).Restrict(sub).Equal(a.Restrict(sub).Add(b.Restrict(sub)))
	}
	if err := quick.Check(linear, nil); err != nil {
		t.Errorf("Restrict not linear: %v", err)
	}
}

// Property: norms behave as expected.
func TestQuickNorms(t *testing.T) {
	norm := func(x [4]int16) bool {
		a := randomConfig(x)
		return a.NormInf() <= a.Agents() && (a.IsZero() == (a.Agents() == 0))
	}
	if err := quick.Check(norm, nil); err != nil {
		t.Errorf("norm laws: %v", err)
	}
	scale := func(x [4]int16) bool {
		a := randomConfig(x)
		return a.Scale(3).Agents() == 3*a.Agents()
	}
	if err := quick.Check(scale, nil); err != nil {
		t.Errorf("Scale law: %v", err)
	}
}

func TestInPlaceAddSub(t *testing.T) {
	a := MustFromMap(testSpace, map[string]int64{"i": 3, "p": 1})
	d := MustFromMap(testSpace, map[string]int64{"i": 1, "q": 2})
	a.AddInPlace(d)
	if want := MustFromMap(testSpace, map[string]int64{"i": 4, "p": 1, "q": 2}); !a.Equal(want) {
		t.Errorf("AddInPlace: got %v, want %v", a, want)
	}
	if !a.SubInPlace(d) {
		t.Fatal("SubInPlace refused a valid subtraction")
	}
	if want := MustFromMap(testSpace, map[string]int64{"i": 3, "p": 1}); !a.Equal(want) {
		t.Errorf("SubInPlace: got %v, want %v", a, want)
	}
}

func TestSubInPlaceRollsBack(t *testing.T) {
	// A failed in-place subtraction must leave the receiver untouched,
	// including components before the one that went negative.
	a := MustFromMap(testSpace, map[string]int64{"i": 5, "q": 1})
	d := MustFromMap(testSpace, map[string]int64{"i": 2, "q": 3})
	if a.SubInPlace(d) {
		t.Fatal("SubInPlace accepted d ≰ a")
	}
	if want := MustFromMap(testSpace, map[string]int64{"i": 5, "q": 1}); !a.Equal(want) {
		t.Errorf("failed SubInPlace mutated receiver: %v", a)
	}
}

func TestAddAt(t *testing.T) {
	a := MustFromMap(testSpace, map[string]int64{"i": 2})
	if got := a.AddAt(0, 3); got != 5 {
		t.Errorf("AddAt returned %d, want 5", got)
	}
	if got := a.AddAt(0, -5); got != 0 {
		t.Errorf("AddAt returned %d, want 0", got)
	}
	if a.GetName("i") != 0 {
		t.Errorf("AddAt did not mutate: %v", a)
	}
}

func TestCopyFromAndRawCounts(t *testing.T) {
	src := MustFromMap(testSpace, map[string]int64{"p": 7})
	dst := MustFromMap(testSpace, map[string]int64{"i": 1, "q": 2})
	dst.CopyFrom(src)
	if !dst.Equal(src) {
		t.Errorf("CopyFrom: got %v, want %v", dst, src)
	}
	// CopyFrom must copy values, not alias the source.
	dst.AddAt(1, 1)
	if src.GetName("p") != 7 {
		t.Error("CopyFrom aliased the source")
	}
	// RawCounts aliases the receiver's storage by design.
	raw := dst.RawCounts()
	raw[0] = 9
	if dst.GetName("i") != 9 {
		t.Error("RawCounts did not alias the receiver")
	}
}

func TestAddDeltaInPlace(t *testing.T) {
	c := randomConfig([4]int16{10, 0, 5, 3})
	if !c.AddDeltaInPlace([]int64{-10, 4, 0, -3}) {
		t.Fatal("feasible displacement rejected")
	}
	if got := []int64{c.Get(0), c.Get(1), c.Get(2), c.Get(3)}; got[0] != 0 || got[1] != 4 || got[2] != 5 || got[3] != 0 {
		t.Errorf("counts after displacement = %v", got)
	}
	// A displacement that would go negative anywhere must leave the
	// configuration untouched, including slots before the violation.
	before := c.Clone()
	if c.AddDeltaInPlace([]int64{3, -2, -6, 0}) {
		t.Fatal("negative-going displacement accepted")
	}
	if !c.Equal(before) {
		t.Errorf("rejected displacement mutated the configuration: %v -> %v", before, c)
	}
}

func TestAddDeltaInPlaceLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("length-mismatched displacement accepted")
		}
	}()
	randomConfig([4]int16{1, 1, 1, 1}).AddDeltaInPlace([]int64{1, 2})
}

// Property: the in-place operations agree with their value-returning
// counterparts.
func TestQuickInPlaceAgree(t *testing.T) {
	add := func(x, y [4]int16) bool {
		a, d := randomConfig(x), randomConfig(y)
		want := a.Add(d)
		a.AddInPlace(d)
		return a.Equal(want)
	}
	if err := quick.Check(add, nil); err != nil {
		t.Errorf("AddInPlace law: %v", err)
	}
	sub := func(x, y [4]int16) bool {
		a, d := randomConfig(x), randomConfig(y)
		want, wantOK := a.Sub(d)
		before := a.Clone()
		ok := a.SubInPlace(d)
		if ok != wantOK {
			return false
		}
		if !ok {
			return a.Equal(before)
		}
		return a.Equal(want)
	}
	if err := quick.Check(sub, nil); err != nil {
		t.Errorf("SubInPlace law: %v", err)
	}
}
