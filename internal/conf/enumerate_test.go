package conf

import "testing"

func TestEnumerateTotal(t *testing.T) {
	s := MustSpace("a", "b", "c")
	var seen []string
	err := EnumerateTotal(s, 2, func(c Config) bool {
		if c.Agents() != 2 {
			t.Errorf("config %v has %d agents, want 2", c, c.Agents())
		}
		seen = append(seen, c.Key())
		return true
	})
	if err != nil {
		t.Fatalf("EnumerateTotal: %v", err)
	}
	// C(2+3-1, 3-1) = C(4,2) = 6 compositions.
	if len(seen) != 6 {
		t.Fatalf("enumerated %d configs, want 6", len(seen))
	}
	uniq := make(map[string]bool, len(seen))
	for _, k := range seen {
		if uniq[k] {
			t.Fatal("duplicate configuration enumerated")
		}
		uniq[k] = true
	}
}

func TestEnumerateTotalStops(t *testing.T) {
	s := MustSpace("a", "b")
	count := 0
	_ = EnumerateTotal(s, 5, func(Config) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("early stop visited %d, want 3", count)
	}
}

func TestEnumerateTotalNegative(t *testing.T) {
	if err := EnumerateTotal(MustSpace("a"), -1, func(Config) bool { return true }); err == nil {
		t.Fatal("negative total accepted")
	}
}

func TestEnumerateUpTo(t *testing.T) {
	s := MustSpace("a", "b")
	count := 0
	err := EnumerateUpTo(s, 3, func(c Config) bool {
		count++
		return true
	})
	if err != nil {
		t.Fatalf("EnumerateUpTo: %v", err)
	}
	// totals 0..3 over 2 states: 1+2+3+4 = 10.
	if count != 10 {
		t.Fatalf("enumerated %d, want 10", count)
	}
}

func TestCountTotal(t *testing.T) {
	tests := []struct {
		d     int
		total int64
		want  int64
	}{
		{3, 2, 6},
		{2, 3, 4},
		{1, 5, 1},
		{0, 0, 1},
		{0, 3, 0},
		{4, 0, 1},
	}
	for _, tc := range tests {
		if got := CountTotal(tc.d, tc.total); got != tc.want {
			t.Errorf("CountTotal(%d,%d) = %d, want %d", tc.d, tc.total, got, tc.want)
		}
	}
}

func TestCountTotalMatchesEnumeration(t *testing.T) {
	s := MustSpace("a", "b", "c", "d")
	for total := int64(0); total <= 5; total++ {
		var n int64
		_ = EnumerateTotal(s, total, func(Config) bool { n++; return true })
		if want := CountTotal(s.Len(), total); n != want {
			t.Errorf("total %d: enumerated %d, CountTotal %d", total, n, want)
		}
	}
}

func TestCountTotalSaturates(t *testing.T) {
	const maxInt64 = int64(^uint64(0) >> 1)
	if got := CountTotal(40, 1_000_000_000_000); got != maxInt64 {
		t.Errorf("CountTotal overflow = %d, want saturation", got)
	}
}
