package conf

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"syscall"
	"testing"

	"repro/internal/faultfs"
)

// newShadowedSets builds a spilling set with a deliberately tiny
// threshold alongside an all-RAM reference set of the same width.
func newSpillSet(t *testing.T, width int, threshold int64) *CountSet {
	t.Helper()
	s, err := NewSpillingCountSet(width, 0, SpillOptions{Dir: t.TempDir(), Threshold: threshold})
	if err != nil {
		t.Fatalf("NewSpillingCountSet: %v", err)
	}
	return s
}

// vec derives a deterministic width-w vector from an index, with
// enough collisions-by-prefix to exercise full-count comparison.
func vec(i, w int) []int64 {
	c := make([]int64, w)
	for j := range c {
		c[j] = int64((i*(j+3) + j) % 97)
	}
	c[w-1] = int64(i) // make vectors pairwise distinct
	return c
}

// A spilling set must behave exactly like an all-RAM set — same ids,
// same dedup decisions, same vector contents on readback — while
// actually evicting pages once the arena outgrows the threshold.
func TestSpillingCountSetMatchesRAM(t *testing.T) {
	const width, n = 6, 5000
	ram := NewCountSet(width, 0)
	// 4 KiB floor on page size → width-6 pages hold ~85 vectors; a
	// 16 KiB threshold keeps only ~4 pages of 59 resident.
	sp := newSpillSet(t, width, 16<<10)
	defer sp.Release()

	for i := 0; i < n; i++ {
		c := vec(i, width)
		idR, addedR := ram.Insert(c)
		idS, addedS := sp.Insert(c)
		if idR != idS || addedR != addedS {
			t.Fatalf("insert %d: ram (%d,%v) vs spill (%d,%v)", i, idR, addedR, idS, addedS)
		}
	}
	// Re-inserting must dedup identically.
	for i := 0; i < n; i += 7 {
		c := vec(i, width)
		idR, addedR := ram.Insert(c)
		idS, addedS := sp.Insert(c)
		if addedR || addedS || idR != idS {
			t.Fatalf("reinsert %d: ram (%d,%v) vs spill (%d,%v)", i, idR, addedR, idS, addedS)
		}
	}
	if sp.Len() != ram.Len() {
		t.Fatalf("Len: spill %d vs ram %d", sp.Len(), ram.Len())
	}
	evictions, _ := sp.SpillStats()
	if evictions == 0 {
		t.Fatalf("arena of %d bytes never spilled past threshold", sp.ArenaBytes())
	}
	// Random-access readback faults evicted pages in; every vector must
	// come back word-for-word identical. Stride to defeat locality.
	for i := 0; i < n; i++ {
		id := (i * 2654435761) % n
		a, b := ram.At(id), sp.At(id)
		if !equalCounts(a, b) {
			t.Fatalf("At(%d): spill %v vs ram %v", id, b, a)
		}
	}
	if _, loads := sp.SpillStats(); loads == 0 {
		t.Error("strided readback over an evicted arena performed no loads")
	}
	// Lookup goes through the same At comparisons.
	for i := 0; i < n; i += 13 {
		id, ok := sp.Lookup(vec(i, width))
		if !ok || id != i {
			t.Fatalf("Lookup(vec(%d)) = (%d,%v)", i, id, ok)
		}
	}
}

// PinRange must hold the pinned pages resident across pressure from
// unpinned faults, so concurrent readers of the pinned range never
// observe a page load.
func TestSpillingCountSetPinRange(t *testing.T) {
	const width, n = 6, 4000
	sp := newSpillSet(t, width, 16<<10)
	defer sp.Release()
	for i := 0; i < n; i++ {
		sp.Insert(vec(i, width))
	}
	lo, hi := 100, 400
	sp.PinRange(lo, hi)
	// Churn far outside the pin to force eviction pressure.
	for i := n - 1; i >= hi; i -= 3 {
		sp.At(i)
	}
	_, loadsBefore := sp.SpillStats()
	for i := lo; i < hi; i++ {
		if got, want := sp.At(i), vec(i, width); !equalCounts(got, want) {
			t.Fatalf("pinned At(%d) = %v, want %v", i, got, want)
		}
	}
	if _, loads := sp.SpillStats(); loads != loadsBefore {
		t.Errorf("reading the pinned range loaded %d pages", loads-loadsBefore)
	}
}

// Release must remove every spill file; double release is a no-op.
func TestSpillingCountSetRelease(t *testing.T) {
	dir := t.TempDir()
	sp, err := NewSpillingCountSet(4, 0, SpillOptions{Dir: dir, Threshold: 8 << 10})
	if err != nil {
		t.Fatalf("NewSpillingCountSet: %v", err)
	}
	for i := 0; i < 4000; i++ {
		sp.Insert(vec(i, 4))
	}
	if evictions, _ := sp.SpillStats(); evictions == 0 {
		t.Fatal("no evictions; test needs spill traffic")
	}
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) != 1 {
		t.Fatalf("expected one spill subdir, got %v (%v)", entries, err)
	}
	sub := filepath.Join(dir, entries[0].Name())
	files, _ := os.ReadDir(sub)
	if len(files) == 0 {
		t.Fatal("no bucket files written")
	}
	sp.Release()
	sp.Release() // idempotent
	if _, err := os.Stat(sub); !os.IsNotExist(err) {
		t.Errorf("spill dir %s survived Release (err=%v)", sub, err)
	}
}

func TestSpillingCountSetValidation(t *testing.T) {
	if _, err := NewSpillingCountSet(4, 0, SpillOptions{}); err == nil {
		t.Error("empty spill dir accepted")
	}
	if _, err := NewSpillingCountSet(-1, 0, SpillOptions{Dir: t.TempDir()}); err == nil {
		t.Error("negative width accepted")
	}
	// Zero threshold falls back to the default and stays all-resident
	// at test scale.
	sp, err := NewSpillingCountSet(3, 0, SpillOptions{Dir: t.TempDir()})
	if err != nil {
		t.Fatalf("NewSpillingCountSet: %v", err)
	}
	defer sp.Release()
	if !sp.Spilling() {
		t.Error("Spilling() = false for a spill-enabled set")
	}
	for i := 0; i < 100; i++ {
		sp.Insert(vec(i, 3))
	}
	if ev, loads := sp.SpillStats(); ev != 0 || loads != 0 {
		t.Errorf("default threshold spilled at toy scale: %d evictions, %d loads", ev, loads)
	}
	for i := 0; i < 100; i++ {
		if got, want := sp.At(i), vec(i, 3); !equalCounts(got, want) {
			t.Fatalf("At(%d) = %v, want %v", i, got, want)
		}
	}
}

// The RAM-set API must be unaffected: stats are zero, pinning and
// release are no-ops.
func TestRAMCountSetSpillNoops(t *testing.T) {
	s := NewCountSet(3, 0)
	s.Insert([]int64{1, 2, 3})
	s.PinRange(0, 1)
	s.Release()
	if s.Spilling() {
		t.Error("RAM set reports Spilling()")
	}
	if ev, loads := s.SpillStats(); ev != 0 || loads != 0 {
		t.Errorf("RAM set spill stats (%d,%d)", ev, loads)
	}
	if got := s.At(0); !equalCounts(got, []int64{1, 2, 3}) {
		t.Errorf("At(0) = %v after Release", got)
	}
}

func ExampleNewSpillingCountSet() {
	dir, _ := os.MkdirTemp("", "spill-example-")
	defer os.RemoveAll(dir)
	s, _ := NewSpillingCountSet(2, 0, SpillOptions{Dir: dir, Threshold: 4 << 10})
	defer s.Release()
	id, added := s.Insert([]int64{3, 4})
	fmt.Println(id, added, s.Spilling())
	// Output: 0 true true
}

// recoverSpillError runs f and returns the *SpillError it panics
// with, nil if it completes, re-panicking anything else.
func recoverSpillError(f func()) (se *SpillError) {
	defer func() {
		if r := recover(); r != nil {
			var ok bool
			if se, ok = r.(*SpillError); !ok {
				panic(r)
			}
		}
	}()
	f()
	return nil
}

// A bucket file tampered with on disk — same length, flipped bytes —
// must fail the CRC recorded at flush when its page is loaded back:
// closure vectors feed hash probes directly, so a silently wrong page
// would corrupt results invisibly.
func TestSpillBucketCorruptionDetected(t *testing.T) {
	const width, n = 6, 4000
	sp := newSpillSet(t, width, 16<<10)
	defer sp.Release()
	for i := 0; i < n; i++ {
		sp.Insert(vec(i, width))
	}
	if ev, _ := sp.SpillStats(); ev == 0 {
		t.Fatal("arena never spilled; corruption path unreachable")
	}
	buckets, err := filepath.Glob(filepath.Join(sp.spill.dir, "bucket-*.spill"))
	if err != nil || len(buckets) == 0 {
		t.Fatalf("no bucket files: %v", err)
	}
	for _, b := range buckets {
		data, err := os.ReadFile(b)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0xff
		if err := os.WriteFile(b, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	se := recoverSpillError(func() {
		for i := 0; i < n; i++ {
			sp.At((i * 2654435761) % n)
		}
	})
	if se == nil {
		t.Fatal("tampered buckets read back without a verification error")
	}
	if se.Op != "verify" {
		t.Errorf("SpillError op %q, want verify", se.Op)
	}
}

// A truncated bucket (torn write, partial flush surviving a crash) is
// caught by the length recorded at flush time.
func TestSpillBucketTruncationDetected(t *testing.T) {
	const width, n = 6, 4000
	sp := newSpillSet(t, width, 16<<10)
	defer sp.Release()
	for i := 0; i < n; i++ {
		sp.Insert(vec(i, width))
	}
	buckets, err := filepath.Glob(filepath.Join(sp.spill.dir, "bucket-*.spill"))
	if err != nil || len(buckets) == 0 {
		t.Fatalf("no bucket files: %v", err)
	}
	for _, b := range buckets {
		data, err := os.ReadFile(b)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(b, data[:len(data)/2], 0o644); err != nil {
			t.Fatal(err)
		}
	}
	se := recoverSpillError(func() {
		for i := 0; i < n; i++ {
			sp.At((i * 2654435761) % n)
		}
	})
	if se == nil {
		t.Fatal("truncated buckets read back without a verification error")
	}
	if se.Op != "verify" {
		t.Errorf("SpillError op %q, want verify", se.Op)
	}
}

// A full disk at flush time degrades to a typed SpillError that
// errors.Is can trace to ENOSPC — the contract petri.Reach relies on
// to return the failure instead of crashing.
func TestSpillDiskFullTyped(t *testing.T) {
	const width = 6
	faulty := faultfs.NewFaulty(faultfs.OS(), []faultfs.Fault{
		{Op: faultfs.OpWrite, Path: ".spill", Nth: 1, Err: syscall.ENOSPC},
	})
	sp, err := NewSpillingCountSet(width, 0, SpillOptions{Dir: t.TempDir(), Threshold: 16 << 10, FS: faulty})
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Release()
	se := recoverSpillError(func() {
		for i := 0; i < 4000; i++ {
			sp.Insert(vec(i, width))
		}
	})
	if se == nil {
		t.Fatal("flush onto a full disk did not surface")
	}
	if se.Op != "write" || !errors.Is(se, syscall.ENOSPC) {
		t.Errorf("SpillError op %q err %v, want a write error wrapping ENOSPC", se.Op, se.Err)
	}
}
