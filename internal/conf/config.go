package conf

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
)

// Config is a multiset of agents over a Space: a mapping ρ ∈ ℕ^P.
// Configs are value-like: arithmetic methods return fresh Configs and
// never mutate their receiver unless the method name says InPlace.
//
// The zero value is not usable; construct Configs with New, FromMap,
// Unit or Parse.
type Config struct {
	space *Space
	v     []int64
}

// New returns the zero configuration over the given space.
func New(space *Space) Config {
	return Config{space: space, v: make([]int64, space.Len())}
}

// FromMap builds a configuration from state-name counts. Unknown names
// and negative counts are errors; names absent from the map count zero.
func FromMap(space *Space, counts map[string]int64) (Config, error) {
	c := New(space)
	for name, n := range counts {
		i, ok := space.Index(name)
		if !ok {
			return Config{}, fmt.Errorf("conf: state %q not in space %v", name, space)
		}
		if n < 0 {
			return Config{}, fmt.Errorf("conf: negative count %d for state %q", n, name)
		}
		c.v[i] = n
	}
	return c, nil
}

// MustFromMap is FromMap for statically valid inputs; it panics on error.
func MustFromMap(space *Space, counts map[string]int64) Config {
	c, err := FromMap(space, counts)
	if err != nil {
		panic(err)
	}
	return c
}

// FromSlice builds a configuration from per-state counts in space order.
// The slice length must equal the space size and counts must be
// non-negative.
func FromSlice(space *Space, counts []int64) (Config, error) {
	if len(counts) != space.Len() {
		return Config{}, fmt.Errorf("conf: %d counts for %d states", len(counts), space.Len())
	}
	c := New(space)
	for i, n := range counts {
		if n < 0 {
			return Config{}, fmt.Errorf("conf: negative count %d for state %q", n, space.Name(i))
		}
		c.v[i] = n
	}
	return c, nil
}

// Unit returns the configuration with a single agent in the named state
// (the mapping written p|P in the paper).
func Unit(space *Space, name string) (Config, error) {
	i, ok := space.Index(name)
	if !ok {
		return Config{}, fmt.Errorf("conf: state %q not in space %v", name, space)
	}
	c := New(space)
	c.v[i] = 1
	return c, nil
}

// MustUnit is Unit for statically valid states; it panics on error.
func MustUnit(space *Space, name string) Config {
	c, err := Unit(space, name)
	if err != nil {
		panic(err)
	}
	return c
}

// View wraps a count slice as a Config without copying: the Config
// aliases counts. It is the zero-copy complement of FromSlice for
// arena-backed closure engines handing out node views; the caller must
// keep the slice unmutated and every count non-negative. The slice
// length must equal the space size.
func View(space *Space, counts []int64) Config {
	if len(counts) != space.Len() {
		panic(fmt.Sprintf("conf: %d counts viewed over space %v", len(counts), space))
	}
	return Config{space: space, v: counts}
}

// Space returns the space the configuration is over.
func (c Config) Space() *Space { return c.space }

// Get returns the number of agents in the state with the given index.
func (c Config) Get(i int) int64 { return c.v[i] }

// GetName returns the number of agents in the named state, or 0 if the
// state is not part of the space (matching the paper's ρ|Q convention).
func (c Config) GetName(name string) int64 {
	i, ok := c.space.Index(name)
	if !ok {
		return 0
	}
	return c.v[i]
}

// WithName returns a copy of c with the named state's count replaced.
func (c Config) WithName(name string, n int64) (Config, error) {
	i, ok := c.space.Index(name)
	if !ok {
		return Config{}, fmt.Errorf("conf: state %q not in space %v", name, c.space)
	}
	if n < 0 {
		return Config{}, fmt.Errorf("conf: negative count %d for state %q", n, name)
	}
	out := c.Clone()
	out.v[i] = n
	return out, nil
}

// Clone returns an independent copy of the configuration.
func (c Config) Clone() Config {
	out := Config{space: c.space, v: make([]int64, len(c.v))}
	copy(out.v, c.v)
	return out
}

// Agents returns |ρ|, the total number of agents.
func (c Config) Agents() int64 {
	var total int64
	for _, n := range c.v {
		total += n
	}
	return total
}

// NormInf returns ‖ρ‖∞ = max_p ρ(p).
func (c Config) NormInf() int64 {
	var m int64
	for _, n := range c.v {
		if n > m {
			m = n
		}
	}
	return m
}

// IsZero reports whether the configuration has no agents.
func (c Config) IsZero() bool {
	for _, n := range c.v {
		if n != 0 {
			return false
		}
	}
	return true
}

// Support returns the indices of states with at least one agent.
func (c Config) Support() []int {
	var out []int
	for i, n := range c.v {
		if n > 0 {
			out = append(out, i)
		}
	}
	return out
}

// AddAt adds d (which may be negative) to state i's count in place and
// returns the new count. It is the single-state complement of the
// in-place API for callers that own the receiver (e.g. built it with
// Clone or New); the caller is responsible for keeping counts
// non-negative. (The simulation engine's step path mutates the
// RawCounts slice directly instead.)
func (c Config) AddAt(i int, d int64) int64 {
	c.v[i] += d
	return c.v[i]
}

// RawCounts returns the configuration's backing count slice; mutating
// it mutates the configuration. Like the other in-place methods it is
// reserved for callers that own the receiver (simulation engines) and
// must keep every count non-negative.
func (c Config) RawCounts() []int64 { return c.v }

// AddInPlace adds d to the receiver componentwise, mutating it. Both
// configurations must be over the same space; the caller owns the
// receiver.
func (c Config) AddInPlace(d Config) {
	c.mustSameSpace(d)
	for i, n := range d.v {
		c.v[i] += n
	}
}

// SubInPlace subtracts d from the receiver componentwise when d ≤ c,
// mutating it and reporting ok=true; otherwise it leaves the receiver
// unchanged and reports ok=false. The caller owns the receiver.
func (c Config) SubInPlace(d Config) bool {
	c.mustSameSpace(d)
	for i, n := range d.v {
		if c.v[i] < n {
			// Roll back the prefix already subtracted.
			for j := 0; j < i; j++ {
				c.v[j] += d.v[j]
			}
			return false
		}
		c.v[i] -= n
	}
	return true
}

// AddDeltaInPlace adds the dense displacement d (one slot per state,
// indexed like the space, entries may be negative) to the receiver in
// place when every resulting count stays non-negative, reporting
// ok=true; otherwise it leaves the receiver unchanged and reports
// ok=false. Like the other in-place methods it is reserved for callers
// that own the receiver; batch simulation engines use it to apply an
// aggregate of many interactions at once.
func (c Config) AddDeltaInPlace(d []int64) bool {
	if len(d) != len(c.v) {
		panic(fmt.Sprintf("conf: displacement over %d states applied to space %v", len(d), c.space))
	}
	for i, n := range d {
		if c.v[i]+n < 0 {
			// Roll back the prefix already applied.
			for j := 0; j < i; j++ {
				c.v[j] -= d[j]
			}
			return false
		}
		c.v[i] += n
	}
	return true
}

// CopyFrom overwrites the receiver's counts with d's, mutating it. Both
// configurations must be over the same space; the caller owns the
// receiver.
func (c Config) CopyFrom(d Config) {
	c.mustSameSpace(d)
	copy(c.v, d.v)
}

// Add returns c + d (componentwise). Both configurations must be over
// the same space.
func (c Config) Add(d Config) Config {
	c.mustSameSpace(d)
	out := c.Clone()
	for i, n := range d.v {
		out.v[i] += n
	}
	return out
}

// Sub returns c − d and ok=true when d ≤ c; otherwise ok=false.
func (c Config) Sub(d Config) (Config, bool) {
	c.mustSameSpace(d)
	out := c.Clone()
	for i, n := range d.v {
		out.v[i] -= n
		if out.v[i] < 0 {
			return Config{}, false
		}
	}
	return out, true
}

// Scale returns n·ρ.
func (c Config) Scale(n int64) Config {
	if n < 0 {
		panic("conf: negative scale")
	}
	out := c.Clone()
	for i := range out.v {
		out.v[i] *= n
	}
	return out
}

// Leq reports whether c ≤ d componentwise.
func (c Config) Leq(d Config) bool {
	c.mustSameSpace(d)
	for i, n := range c.v {
		if n > d.v[i] {
			return false
		}
	}
	return true
}

// Equal reports whether c and d agree on every state.
func (c Config) Equal(d Config) bool {
	if !c.space.Equal(d.space) {
		return false
	}
	for i, n := range c.v {
		if n != d.v[i] {
			return false
		}
	}
	return true
}

// Restrict returns ρ|Q: the configuration over the target space q whose
// count on each state of q equals ρ's count when the state also belongs
// to ρ's space, and zero otherwise. Following Section 2 of the paper, q
// need not be a subset of ρ's space.
func (c Config) Restrict(q *Space) Config {
	out := New(q)
	for i := 0; i < q.Len(); i++ {
		if j, ok := c.space.Index(q.Name(i)); ok {
			out.v[i] = c.v[j]
		}
	}
	return out
}

// RestrictInto writes the counts of ρ|q into dst, using an index map
// previously computed with c.Space().IndexMap(q): dst[i] receives the
// count of q's i-th state, or zero when that state is not in ρ's
// space. It is the scratch-buffer form of Restrict for hot loops that
// restrict many configurations to the same sub-space; dst must have
// the target space's length.
func (c Config) RestrictInto(dst []int64, idxMap []int) {
	for i, j := range idxMap {
		if j >= 0 {
			dst[i] = c.v[j]
		} else {
			dst[i] = 0
		}
	}
}

// Embed returns the configuration over the target space p that agrees
// with c on c's states. Every state of c's space carrying agents must
// exist in p.
func (c Config) Embed(p *Space) (Config, error) {
	out := New(p)
	for i, n := range c.v {
		if n == 0 {
			continue
		}
		j, ok := p.Index(c.space.Name(i))
		if !ok {
			return Config{}, fmt.Errorf("conf: cannot embed: state %q not in target space", c.space.Name(i))
		}
		out.v[j] = n
	}
	return out, nil
}

// ZeroOutside reports whether ρ(p) = 0 for every state p whose index is
// not marked true in keep. It is the predicate used by stabilized
// configurations (Section 5).
func (c Config) ZeroOutside(keep []bool) bool {
	for i, n := range c.v {
		if n != 0 && !keep[i] {
			return false
		}
	}
	return true
}

// Key returns a compact string key identifying the configuration's
// counts. Keys are only comparable between configurations over equal
// spaces; they are intended as map keys for visited-set bookkeeping.
func (c Config) Key() string {
	buf := make([]byte, 0, len(c.v)*2)
	var tmp [binary.MaxVarintLen64]byte
	for _, n := range c.v {
		k := binary.PutUvarint(tmp[:], uint64(n))
		buf = append(buf, tmp[:k]...)
	}
	return string(buf)
}

// String renders the configuration as e.g. "2·i + 3·p"; the zero
// configuration renders as "0".
func (c Config) String() string {
	type entry struct {
		name string
		n    int64
	}
	entries := make([]entry, 0, len(c.v))
	for i, n := range c.v {
		if n != 0 {
			entries = append(entries, entry{c.space.Name(i), n})
		}
	}
	if len(entries) == 0 {
		return "0"
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].name < entries[j].name })
	var b strings.Builder
	for i, e := range entries {
		if i > 0 {
			b.WriteString(" + ")
		}
		if e.n == 1 {
			b.WriteString(e.name)
			continue
		}
		fmt.Fprintf(&b, "%d·%s", e.n, e.name)
	}
	return b.String()
}

// Counts returns the configuration as a name→count map, omitting zeros.
func (c Config) Counts() map[string]int64 {
	out := make(map[string]int64)
	for i, n := range c.v {
		if n != 0 {
			out[c.space.Name(i)] = n
		}
	}
	return out
}

func (c Config) mustSameSpace(d Config) {
	if !c.space.Equal(d.space) {
		panic(fmt.Sprintf("conf: mixed spaces %v and %v", c.space, d.space))
	}
}
