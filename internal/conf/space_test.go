package conf

import (
	"strings"
	"testing"
)

func TestNewSpace(t *testing.T) {
	s, err := NewSpace("i", "p", "q")
	if err != nil {
		t.Fatalf("NewSpace: %v", err)
	}
	if got := s.Len(); got != 3 {
		t.Fatalf("Len = %d, want 3", got)
	}
	for want, name := range []string{"i", "p", "q"} {
		got, ok := s.Index(name)
		if !ok || got != want {
			t.Errorf("Index(%q) = %d,%v, want %d,true", name, got, ok, want)
		}
		if s.Name(want) != name {
			t.Errorf("Name(%d) = %q, want %q", want, s.Name(want), name)
		}
	}
	if s.Contains("z") {
		t.Error("Contains(z) = true, want false")
	}
}

func TestNewSpaceErrors(t *testing.T) {
	tests := []struct {
		name  string
		input []string
	}{
		{"duplicate", []string{"a", "b", "a"}},
		{"empty name", []string{"a", ""}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewSpace(tc.input...); err == nil {
				t.Fatalf("NewSpace(%v) succeeded, want error", tc.input)
			}
		})
	}
}

func TestMustSpacePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustSpace with duplicates did not panic")
		}
	}()
	MustSpace("a", "a")
}

func TestSpaceSub(t *testing.T) {
	s := MustSpace("a", "b", "c")
	sub, err := s.Sub("c", "a")
	if err != nil {
		t.Fatalf("Sub: %v", err)
	}
	if sub.Len() != 2 || sub.Name(0) != "c" || sub.Name(1) != "a" {
		t.Fatalf("Sub = %v, want {c, a}", sub)
	}
	if _, err := s.Sub("z"); err == nil {
		t.Fatal("Sub(z) succeeded, want error")
	}
}

func TestSpaceEqual(t *testing.T) {
	a := MustSpace("x", "y")
	b := MustSpace("x", "y")
	c := MustSpace("y", "x")
	if !a.Equal(b) {
		t.Error("identical spaces not Equal")
	}
	if a.Equal(c) {
		t.Error("reordered spaces Equal")
	}
}

func TestSpaceString(t *testing.T) {
	s := MustSpace("a", "b")
	if got := s.String(); !strings.Contains(got, "a") || !strings.Contains(got, "b") {
		t.Errorf("String = %q, want both names present", got)
	}
}

func TestSpaceNamesIsCopy(t *testing.T) {
	s := MustSpace("a", "b")
	names := s.Names()
	names[0] = "mutated"
	if s.Name(0) != "a" {
		t.Error("Names() exposed internal slice")
	}
}

func TestNilSpaceLen(t *testing.T) {
	var s *Space
	if s.Len() != 0 {
		t.Error("nil space Len != 0")
	}
}
