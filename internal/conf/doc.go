// Package conf provides configurations — multisets of agents over a
// state Space (ρ ∈ ℕ^P) — and the arena-backed set structures the
// simulation and verification engines dedup them with.
//
// Two ownership conventions are invariants the engines above rely on:
//
//   - Configs are value-like. Arithmetic methods return fresh Configs
//     and never mutate their receiver unless the method name says so:
//     the InPlace suffix (AddInPlace, SubInPlace, AddDeltaInPlace),
//     AddAt, CopyFrom and the RawCounts backing-slice accessor are the
//     explicit mutation surface the hot paths use; everything else is
//     safe to share.
//   - CountSet owns its counts. Every distinct count vector inserted
//     into a CountSet is copied once into a single flat int64 arena;
//     the node id is its insertion order, and At returns a view into
//     the arena that is stable for the set's lifetime but owned by
//     it — callers must copy before mutating. Deduplication runs
//     through an open-addressing table over splitmix64-mixed integer
//     hashes of the raw counts (HashCounts), with collisions resolved
//     by exact comparison, so membership is exact regardless of hash
//     quality and no string key exists anywhere. InsertCapped folds
//     lookup, budget check and insertion into one probe sequence;
//     insertion order — and therefore every id handed out — is
//     deterministic in the insertion sequence, which is what makes
//     the closure engines' parallel explorations byte-identical.
//
// Enumerate and Space provide the bounded enumeration and index
// machinery (IndexMap, RestrictInto) the verifiers restrict
// configurations with.
package conf
