package conf

import (
	"math/rand"
	"testing"
)

func TestCountSetBasic(t *testing.T) {
	s := NewCountSet(3, 0)
	if s.Len() != 0 {
		t.Fatalf("empty set Len = %d", s.Len())
	}
	a := []int64{1, 2, 3}
	id, added := s.Insert(a)
	if id != 0 || !added {
		t.Fatalf("first Insert = (%d, %v)", id, added)
	}
	// Mutating the caller's slice must not affect the stored copy.
	a[0] = 99
	if got := s.At(0); got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("At(0) = %v, want [1 2 3]", got)
	}
	if id, added := s.Insert([]int64{1, 2, 3}); id != 0 || added {
		t.Fatalf("duplicate Insert = (%d, %v)", id, added)
	}
	if id, added := s.Insert([]int64{3, 2, 1}); id != 1 || !added {
		t.Fatalf("second Insert = (%d, %v)", id, added)
	}
	if id, ok := s.Lookup([]int64{3, 2, 1}); !ok || id != 1 {
		t.Fatalf("Lookup = (%d, %v)", id, ok)
	}
	if _, ok := s.Lookup([]int64{0, 0, 0}); ok {
		t.Fatal("Lookup found absent vector")
	}
}

func TestCountSetGrowthAndIDStability(t *testing.T) {
	const n = 5000
	s := NewCountSet(2, 0) // minimal table: force many growths
	for i := 0; i < n; i++ {
		id, added := s.Insert([]int64{int64(i), int64(i % 7)})
		if id != i || !added {
			t.Fatalf("Insert %d = (%d, %v)", i, id, added)
		}
	}
	if s.Len() != n {
		t.Fatalf("Len = %d, want %d", s.Len(), n)
	}
	for i := 0; i < n; i++ {
		if got := s.At(i); got[0] != int64(i) || got[1] != int64(i%7) {
			t.Fatalf("At(%d) = %v", i, got)
		}
		if id, ok := s.Lookup([]int64{int64(i), int64(i % 7)}); !ok || id != i {
			t.Fatalf("Lookup %d = (%d, %v)", i, id, ok)
		}
	}
}

// The set must agree with a map-based reference under random
// insert/lookup traffic, including vectors with equal hashes prefixes
// and negative-looking large values (ω markings use MaxInt64).
func TestCountSetMatchesMapReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	s := NewCountSet(4, 0)
	ref := make(map[[4]int64]int)
	for i := 0; i < 20000; i++ {
		var k [4]int64
		for j := range k {
			k[j] = int64(rng.Intn(6))
			if rng.Intn(100) == 0 {
				k[j] = int64(^uint64(0) >> 1) // MaxInt64, ω-style
			}
		}
		id, added := s.Insert(k[:])
		refID, seen := ref[k]
		if added == seen {
			t.Fatalf("step %d: added=%v but seen=%v for %v", i, added, seen, k)
		}
		if seen && id != refID {
			t.Fatalf("step %d: id=%d, want %d", i, id, refID)
		}
		if !seen {
			ref[k] = id
		}
	}
	if s.Len() != len(ref) {
		t.Fatalf("Len = %d, reference %d", s.Len(), len(ref))
	}
}

func TestCountSetZeroWidth(t *testing.T) {
	s := NewCountSet(0, 0)
	id, added := s.Insert(nil)
	if id != 0 || !added {
		t.Fatalf("first zero-width Insert = (%d, %v)", id, added)
	}
	if id, added := s.Insert([]int64{}); id != 0 || added {
		t.Fatalf("second zero-width Insert = (%d, %v)", id, added)
	}
	if got := s.At(0); len(got) != 0 {
		t.Fatalf("At(0) length = %d", len(got))
	}
}

func TestHashCountsDistinguishes(t *testing.T) {
	// Not a cryptographic requirement — but the pairs the old string
	// keys distinguished must not collide trivially.
	pairs := [][2][]int64{
		{{1, 0}, {0, 1}},
		{{2, 2}, {2, 3}},
		{{0, 0, 0}, {0, 0}},
		{{256}, {1}},
	}
	for _, p := range pairs {
		if HashCounts(p[0]) == HashCounts(p[1]) {
			t.Errorf("HashCounts collision between %v and %v", p[0], p[1])
		}
	}
}

func TestViewAndRestrictInto(t *testing.T) {
	s := MustSpace("a", "b", "c")
	counts := []int64{4, 5, 6}
	v := View(s, counts)
	if v.Get(1) != 5 || v.Agents() != 15 {
		t.Fatalf("View counts wrong: %v", v)
	}
	q := MustSpace("c", "z", "a")
	idx := s.IndexMap(q)
	if idx[0] != 2 || idx[1] != -1 || idx[2] != 0 {
		t.Fatalf("IndexMap = %v", idx)
	}
	dst := make([]int64, 3)
	v.RestrictInto(dst, idx)
	want := v.Restrict(q)
	for i := range dst {
		if dst[i] != want.Get(i) {
			t.Fatalf("RestrictInto = %v, Restrict = %v", dst, want)
		}
	}
}
