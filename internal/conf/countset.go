package conf

// CountSet is an arena-backed deduplicating set of count vectors: the
// visited-set substrate of the closure engines. Every distinct vector
// is stored exactly once, flat, in one growing []int64 arena, and is
// addressed by a dense integer id assigned in insertion order — the
// node ids of a reachability closure. Dedup runs through an
// open-addressing hash table over a 64-bit hash of the raw counts; no
// string key is ever materialized. Collisions are resolved by full
// count comparison, so the set is exact regardless of hash quality.
//
// A CountSet is not safe for concurrent mutation; concurrent readers
// of At slices are fine while no Insert runs. In spill mode
// (NewSpillingCountSet) concurrent reads are additionally restricted
// to the pinned id range — see PinRange.
type CountSet struct {
	width  int
	arena  []int64 // id's counts at arena[id*width : (id+1)*width]
	hashes []uint64
	table  []int32 // open addressing: 0 = empty, else id+1
	mask   uint64
	spill  *spillArena // nil for the default all-RAM arena
}

// NewCountSet builds a set of count vectors of the given width
// (non-negative). capacityHint pre-sizes the table for about that many
// distinct vectors; the set grows beyond it transparently.
func NewCountSet(width, capacityHint int) *CountSet {
	if width < 0 {
		panic("conf: negative CountSet width")
	}
	size := 16
	for size < capacityHint*2 {
		size <<= 1
	}
	return &CountSet{
		width: width,
		table: make([]int32, size),
		mask:  uint64(size - 1),
	}
}

// Len returns the number of distinct vectors in the set.
func (s *CountSet) Len() int { return len(s.hashes) }

// Width returns the vector width.
func (s *CountSet) Width() int { return s.width }

// At returns the vector with the given id. The slice aliases the
// arena and must not be mutated. For all-RAM sets it stays valid
// (with the same contents) across later Inserts; for spilling sets it
// is only valid until the next At, Insert or PinRange, which may
// evict the page behind it.
func (s *CountSet) At(id int) []int64 {
	if s.spill != nil {
		return s.spill.at(id)
	}
	lo := id * s.width
	return s.arena[lo : lo+s.width : lo+s.width]
}

// Lookup returns the id of the vector equal to c, if present.
func (s *CountSet) Lookup(c []int64) (int, bool) {
	return s.LookupHashed(c, HashCounts(c))
}

// LookupHashed is Lookup with the caller-supplied HashCounts(c): the
// parallel BFS hashes candidate vectors in its workers and resolves
// them in the serial merge without rehashing.
func (s *CountSet) LookupHashed(c []int64, h uint64) (int, bool) {
	id := s.find(c, h)
	return id, id >= 0
}

// Insert adds c to the set, copying it into the arena on first sight,
// and returns its id and whether it was newly added.
func (s *CountSet) Insert(c []int64) (int, bool) {
	return s.InsertHashed(c, HashCounts(c))
}

// InsertHashed is Insert with the caller-supplied HashCounts(c). The
// lookup and the insertion share one probe sequence.
func (s *CountSet) InsertHashed(c []int64, h uint64) (int, bool) {
	id, added, _ := s.insertCapped(c, h, -1)
	return id, added
}

// InsertCapped is InsertHashed bounded by a budget: when c is absent
// and the set already holds max vectors, nothing is inserted and
// full=true is reported. It is the closure engine's
// check-budget-before-commit step, in a single probe.
func (s *CountSet) InsertCapped(c []int64, h uint64, max int) (id int, added, full bool) {
	return s.insertCapped(c, h, max)
}

func (s *CountSet) insertCapped(c []int64, h uint64, max int) (int, bool, bool) {
	// Growing up front (even when c turns out to be present) keeps the
	// probe sequence usable for direct placement; the extra growth is
	// amortized exactly like the on-demand one.
	if (len(s.hashes)+1)*4 > len(s.table)*3 {
		s.grow()
	}
	for i := h & s.mask; ; i = (i + 1) & s.mask {
		e := s.table[i]
		if e == 0 {
			if max >= 0 && len(s.hashes) >= max {
				return -1, false, true
			}
			id := len(s.hashes)
			s.hashes = append(s.hashes, h)
			if s.spill != nil {
				s.spill.append(c)
			} else {
				s.arena = append(s.arena, c...)
			}
			s.table[i] = int32(id + 1)
			return id, true, false
		}
		id := int(e - 1)
		if s.hashes[id] == h && equalCounts(s.At(id), c) {
			return id, false, false
		}
	}
}

// find returns the id of the vector equal to c (with hash h), or −1.
func (s *CountSet) find(c []int64, h uint64) int {
	for i := h & s.mask; ; i = (i + 1) & s.mask {
		e := s.table[i]
		if e == 0 {
			return -1
		}
		id := int(e - 1)
		if s.hashes[id] == h && equalCounts(s.At(id), c) {
			return id
		}
	}
}

// grow doubles the table and reinserts every id by its stored hash.
// Stored vectors are pairwise distinct, so no count comparisons are
// needed.
func (s *CountSet) grow() {
	size := len(s.table) * 2
	s.table = make([]int32, size)
	s.mask = uint64(size - 1)
	for id, h := range s.hashes {
		i := h & s.mask
		for s.table[i] != 0 {
			i = (i + 1) & s.mask
		}
		s.table[i] = int32(id + 1)
	}
}

func equalCounts(a, b []int64) bool {
	for i, v := range a {
		if v != b[i] {
			return false
		}
	}
	return true
}

// HashCounts returns a 64-bit hash of a raw count vector, mixing every
// word through a splitmix64-style finalizer. It is the integer
// replacement for Config.Key on visited-set hot paths; equal vectors
// hash equal, and CountSet resolves the (rare) collisions exactly.
func HashCounts(c []int64) uint64 {
	h := uint64(len(c))*0x9E3779B97F4A7C15 + 0x243F6A8885A308D3
	for _, v := range c {
		h = hashMix(h ^ uint64(v))
	}
	return h
}

func hashMix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}
