package conf

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"repro/internal/faultfs"
)

// SpillError is the typed failure of the out-of-core arena: a bucket
// file that could not be written (disk full — errors.Is(err,
// syscall.ENOSPC) sees through it), could not be read back, or read
// back with contents that do not match the CRC recorded at flush time
// (torn write, bit rot, a truncated file). The arena's fast paths
// (at/pin inside hash probes) cannot return errors, so they panic
// with a *SpillError; the closure drivers (petri.Reach) recover it at
// their boundary and degrade to an ordinary returned error instead of
// crashing the process.
type SpillError struct {
	Op   string // "write", "read", "verify"
	Path string
	Err  error
}

func (e *SpillError) Error() string { return fmt.Sprintf("conf: spill %s %s: %v", e.Op, e.Path, e.Err) }
func (e *SpillError) Unwrap() error { return e.Err }

// SpillOptions configures a CountSet's out-of-core mode: once the
// resident arena grows past Threshold bytes, cold arena pages are
// flushed to bucket files under a private temp directory inside Dir
// and reloaded on demand, so closures whose count vectors exceed RAM
// keep running at the cost of page I/O on cold probes. Only the raw
// vectors spill; the dedup table and the 64-bit hashes stay resident,
// so an insert touches disk only on a genuine hash collision or when
// appending past a page boundary.
type SpillOptions struct {
	// Dir is the directory the spill buckets live under; the set
	// creates (and on Release removes) a private subdirectory of it.
	// It must be non-empty; it is created if absent.
	Dir string
	// Threshold is the resident-arena byte budget above which full
	// cold pages are evicted to disk. Zero means DefaultSpillThreshold.
	Threshold int64
	// FS is the filesystem seam bucket I/O goes through; nil means the
	// real OS. Fault-injection tests pass a faultfs.Faulty here.
	FS faultfs.FS
}

// DefaultSpillThreshold is the resident-arena budget used when
// SpillOptions.Threshold is zero: 256 MiB of raw count vectors.
const DefaultSpillThreshold = int64(256) << 20

// spillArena is the paged out-of-core arena behind a spilling
// CountSet. Vectors are dense in insertion order, pageVecs per page;
// a page is immutable once full (stored vectors are never mutated),
// so it is written to its bucket file at most once and eviction after
// that first flush is free. The tail page being appended to is always
// resident, as is the pinned id range (the closure level a parallel
// BFS is fanning out), so concurrent readers of pinned ids never
// fault a page in — page loads mutate the arena and are only legal
// from the owning (serial) goroutine.
type spillArena struct {
	width     int
	pageVecs  int
	pageBytes int64
	threshold int64
	dir       string // owned temp dir, removed by Release
	fsys      faultfs.FS

	pages    []spillPage
	resident int64
	hand     int // clock eviction hand
	pinLo    int // pinned page range [pinLo, pinHi)
	pinHi    int

	evictions int
	loads     int
	released  bool
}

type spillPage struct {
	data    []int64
	flushed bool // the bucket file holds the page's final contents
	// size and sum are the bucket file's byte length and CRC-32C,
	// recorded at flush and verified at every load — a torn or rotted
	// bucket becomes a typed SpillError, never silently wrong closure
	// members.
	size int
	sum  uint32
}

var spillCRC = crc32.MakeTable(crc32.Castagnoli)

// spillPageTarget bounds one bucket file's payload. Small thresholds
// shrink pages so eviction stays meaningful in tests; the floor keeps
// the page count (and file count) sane.
func spillPageTarget(threshold int64) int64 {
	target := threshold / 8
	if target < 4<<10 {
		target = 4 << 10
	}
	if target > 1<<20 {
		target = 1 << 20
	}
	return target
}

func newSpillArena(width int, opts SpillOptions) (*spillArena, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("conf: spill needs a directory")
	}
	threshold := opts.Threshold
	if threshold <= 0 {
		threshold = DefaultSpillThreshold
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("conf: spill dir: %w", err)
	}
	dir, err := os.MkdirTemp(opts.Dir, "countset-")
	if err != nil {
		return nil, fmt.Errorf("conf: spill dir: %w", err)
	}
	vecBytes := int64(width) * 8
	if vecBytes == 0 {
		vecBytes = 8 // width-0 spaces store no payload; keep the math finite
	}
	pageVecs := int(spillPageTarget(threshold) / vecBytes)
	if pageVecs < 1 {
		pageVecs = 1
	}
	fsys := opts.FS
	if fsys == nil {
		fsys = faultfs.OS()
	}
	return &spillArena{
		width:     width,
		pageVecs:  pageVecs,
		pageBytes: int64(pageVecs) * vecBytes,
		threshold: threshold,
		dir:       dir,
		fsys:      fsys,
	}, nil
}

// append adds one vector at the end of the arena (the caller assigns
// its id = previous length).
func (a *spillArena) append(c []int64) {
	if len(a.pages) == 0 || len(a.pages[len(a.pages)-1].data) == a.pageVecs*a.width {
		a.maybeEvictExcept(-1)
		a.pages = append(a.pages, spillPage{data: make([]int64, 0, a.pageVecs*a.width)})
		a.resident += a.pageBytes
	}
	tail := &a.pages[len(a.pages)-1]
	tail.data = append(tail.data, c...)
}

// at returns the vector with the given id, loading its page from disk
// if it was evicted. Loads mutate the arena: concurrent readers are
// only safe on the pinned range (see pin), which is kept resident.
func (a *spillArena) at(id int) []int64 {
	pi := id / a.pageVecs
	p := &a.pages[pi]
	if p.data == nil {
		a.load(pi)
		// Shed pressure from the fault, but never the page we are
		// about to hand a slice of.
		a.maybeEvictExcept(pi)
	}
	lo := (id - pi*a.pageVecs) * a.width
	return p.data[lo : lo+a.width : lo+a.width]
}

// pin marks the pages covering ids [lo, hi) as resident and
// unevictable (replacing any previous pin) and faults them in now, so
// concurrent at calls on the range are read-only.
func (a *spillArena) pin(lo, hi int) {
	a.pinLo, a.pinHi = lo/a.pageVecs, (hi+a.pageVecs-1)/a.pageVecs
	for pi := a.pinLo; pi < a.pinHi && pi < len(a.pages); pi++ {
		if a.pages[pi].data == nil {
			a.load(pi)
		}
	}
	a.maybeEvictExcept(-1)
}

func (a *spillArena) pinned(pi int) bool {
	// The tail page is always pinned: it is mid-append and has no
	// final contents to flush.
	return (pi >= a.pinLo && pi < a.pinHi) || pi == len(a.pages)-1
}

// maybeEvictExcept flushes and drops cold full pages until the
// resident footprint fits the threshold again (or nothing evictable
// remains — pinned levels may legitimately overshoot). Page `except`
// (−1 for none) is never evicted: it is the page a caller is handing
// out a slice of. Clock order makes the eviction pattern
// deterministic.
func (a *spillArena) maybeEvictExcept(except int) {
	for a.resident > a.threshold {
		evicted := false
		for scanned := 0; scanned < len(a.pages); scanned++ {
			pi := a.hand
			a.hand = (a.hand + 1) % len(a.pages)
			p := &a.pages[pi]
			if p.data == nil || pi == except || a.pinned(pi) || len(p.data) != a.pageVecs*a.width {
				continue
			}
			if !p.flushed {
				a.flush(pi)
			}
			p.data = nil
			a.resident -= a.pageBytes
			a.evictions++
			evicted = true
			break
		}
		if !evicted {
			return
		}
	}
}

func (a *spillArena) bucketPath(pi int) string {
	return filepath.Join(a.dir, fmt.Sprintf("bucket-%06d.spill", pi))
}

// flush writes page pi's vectors to its bucket file as little-endian
// int64 words, recording the payload's byte length and CRC-32C for
// read-back verification. Pages are only flushed when full, so the
// file is the page's final contents and is written exactly once. A
// write failure (disk full included) panics with a *SpillError the
// closure driver recovers into a returned error.
func (a *spillArena) flush(pi int) {
	p := &a.pages[pi]
	buf := make([]byte, 8*len(p.data))
	for i, v := range p.data {
		binary.LittleEndian.PutUint64(buf[8*i:], uint64(v))
	}
	if err := a.fsys.WriteFile(a.bucketPath(pi), buf, 0o644); err != nil {
		panic(&SpillError{Op: "write", Path: a.bucketPath(pi), Err: err})
	}
	p.size = len(buf)
	p.sum = crc32.Checksum(buf, spillCRC)
	p.flushed = true
}

// load reads page pi back and verifies it byte for byte against the
// length and CRC recorded at flush: a truncated, torn or rotted
// bucket file surfaces as a typed *SpillError instead of silently
// wrong closure members (which checkTiling-style invariants could
// never catch — vectors feed hash probes directly).
func (a *spillArena) load(pi int) {
	if a.released {
		panic("conf: CountSet used after Release")
	}
	p := &a.pages[pi]
	buf, err := a.fsys.ReadFile(a.bucketPath(pi))
	if err != nil {
		panic(&SpillError{Op: "read", Path: a.bucketPath(pi), Err: err})
	}
	if len(buf) != p.size {
		panic(&SpillError{Op: "verify", Path: a.bucketPath(pi),
			Err: fmt.Errorf("bucket is %d bytes, flushed %d (truncated or torn)", len(buf), p.size)})
	}
	if sum := crc32.Checksum(buf, spillCRC); sum != p.sum {
		panic(&SpillError{Op: "verify", Path: a.bucketPath(pi),
			Err: fmt.Errorf("bucket CRC %08x, flushed %08x (bit rot or torn write)", sum, p.sum)})
	}
	data := make([]int64, len(buf)/8)
	for i := range data {
		data[i] = int64(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	p.data = data
	a.resident += a.pageBytes
	a.loads++
}

// NewSpillingCountSet builds a CountSet whose arena spills to disk:
// semantically identical to NewCountSet — same ids, same dedup, the
// node-for-node-identical contract the closure engines rely on — but
// the raw vectors live in fixed-size pages that are flushed to bucket
// files once the resident footprint exceeds opts.Threshold and
// reloaded on demand. Release removes the bucket directory.
func NewSpillingCountSet(width, capacityHint int, opts SpillOptions) (*CountSet, error) {
	if width < 0 {
		return nil, fmt.Errorf("conf: negative CountSet width")
	}
	arena, err := newSpillArena(width, opts)
	if err != nil {
		return nil, err
	}
	s := NewCountSet(width, capacityHint)
	s.spill = arena
	return s, nil
}

// Spilling reports whether the set runs the out-of-core arena.
func (s *CountSet) Spilling() bool { return s.spill != nil }

// SpillStats reports the spill traffic so far: pages evicted to disk
// and pages loaded back. Both are zero for all-RAM sets and for
// spilling sets whose arena never outgrew the threshold.
func (s *CountSet) SpillStats() (evictions, loads int) {
	if s.spill == nil {
		return 0, 0
	}
	return s.spill.evictions, s.spill.loads
}

// ArenaBytes returns the total arena footprint (resident + spilled):
// 8 bytes per stored count word.
func (s *CountSet) ArenaBytes() int64 {
	return int64(s.Len()) * int64(s.width) * 8
}

// PinRange ensures the pages holding ids [lo, hi) are resident and
// exempt from eviction until the next PinRange or Release, replacing
// any previous pin. Concurrent readers of At on a pinned range are
// safe while no Insert runs; unpinned ids may fault pages in, which
// mutates the set. All-RAM sets need no pinning; the call is a no-op.
func (s *CountSet) PinRange(lo, hi int) {
	if s.spill != nil {
		s.spill.pin(lo, hi)
	}
}

// Release deletes the set's spill files. The set must not be used
// afterwards (evicted pages are unrecoverable); releasing an all-RAM
// set, or releasing twice, is a no-op.
func (s *CountSet) Release() {
	if s.spill == nil || s.spill.released {
		return
	}
	s.spill.released = true
	os.RemoveAll(s.spill.dir)
}
